#include "util/cli.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>

namespace psph::util {

namespace {

bool parse_int64(const std::string& text, std::int64_t* out) {
  try {
    std::size_t used = 0;
    const long long value = std::stoll(text, &used);
    if (used != text.size()) return false;
    *out = static_cast<std::int64_t>(value);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_double(const std::string& text, double* out) {
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) return false;
    *out = value;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_bool(const std::string& text, bool* out) {
  if (text == "true" || text == "1" || text == "yes" || text.empty()) {
    *out = true;
    return true;
  }
  if (text == "false" || text == "0" || text == "no") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

Cli& Cli::add(Flag flag) {
  flags_.push_back(std::move(flag));
  return *this;
}

Cli& Cli::flag(const std::string& name, int* target, const std::string& help) {
  return add({name, help, std::to_string(*target), {}, false,
              [target](const std::string& text) {
                std::int64_t wide = 0;
                if (!parse_int64(text, &wide)) return false;
                if (wide < std::numeric_limits<int>::min() ||
                    wide > std::numeric_limits<int>::max()) {
                  return false;  // reject instead of silently truncating
                }
                *target = static_cast<int>(wide);
                return true;
              }});
}

Cli& Cli::flag(const std::string& name, std::int64_t* target,
               const std::string& help) {
  return add({name, help, std::to_string(*target), {}, false,
              [target](const std::string& text) {
                return parse_int64(text, target);
              }});
}

Cli& Cli::flag(const std::string& name, double* target,
               const std::string& help) {
  return add({name, help, std::to_string(*target), {}, false,
              [target](const std::string& text) {
                return parse_double(text, target);
              }});
}

Cli& Cli::flag(const std::string& name, bool* target,
               const std::string& help) {
  return add({name, help, *target ? "true" : "false", {}, true,
              [target](const std::string& text) {
                return parse_bool(text, target);
              }});
}

Cli& Cli::flag(const std::string& name, std::string* target,
               const std::string& help) {
  return add({name, help, *target, {}, false,
              [target](const std::string& text) {
                *target = text;
                return true;
              }});
}

Cli& Cli::flag_choice(const std::string& name, std::string* target,
                      std::vector<std::string> choices,
                      const std::string& help) {
  auto shared_choices =
      std::make_shared<std::vector<std::string>>(std::move(choices));
  Flag flag{name, help, *target, *shared_choices, false,
            [target, shared_choices](const std::string& text) {
              for (const std::string& choice : *shared_choices) {
                if (text == choice) {
                  *target = text;
                  return true;
                }
              }
              return false;
            }};
  return add(std::move(flag));
}

const Cli::Flag* Cli::find(const std::string& name) const {
  for (const Flag& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

std::string Cli::suggest(const std::string& name) const {
  // Plain Levenshtein over the (short) registered names; a suggestion is
  // offered only within distance 2, past which "did you mean" reads as
  // noise rather than help.
  std::string best;
  std::size_t best_distance = 3;
  for (const Flag& flag : flags_) {
    const std::string& candidate = flag.name;
    std::vector<std::size_t> previous(candidate.size() + 1);
    std::vector<std::size_t> current(candidate.size() + 1);
    for (std::size_t j = 0; j <= candidate.size(); ++j) previous[j] = j;
    for (std::size_t i = 1; i <= name.size(); ++i) {
      current[0] = i;
      for (std::size_t j = 1; j <= candidate.size(); ++j) {
        const std::size_t substitute =
            previous[j - 1] + (name[i - 1] == candidate[j - 1] ? 0 : 1);
        current[j] = std::min({previous[j] + 1, current[j - 1] + 1,
                               substitute});
      }
      std::swap(previous, current);
    }
    const std::size_t distance = previous[candidate.size()];
    if (distance < best_distance) {
      best_distance = distance;
      best = candidate;
    }
  }
  return best;
}

std::string Cli::usage() const {
  std::ostringstream out;
  out << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const Flag& flag : flags_) {
    out << "  --" << flag.name;
    if (!flag.choices.empty()) {
      out << "=<";
      for (std::size_t i = 0; i < flag.choices.size(); ++i) {
        out << (i ? "|" : "") << flag.choices[i];
      }
      out << ">";
    } else if (!flag.is_bool) {
      out << "=<value>";
    }
    out << "\n      " << flag.help << " (default: " << flag.default_repr
        << ")\n";
  }
  out << "  --help\n      show this message\n";
  out << "\nA bare `--` ends flag parsing; later arguments are positional.\n";
  return out.str();
}

Cli::ParseResult Cli::try_parse(int argc, char** argv) {
  ParseResult result;
  bool flags_ended = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (flags_ended) {
      result.positional.push_back(std::move(arg));
      continue;
    }
    if (arg == "--") {
      flags_ended = true;
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      result.help = true;
      return result;
    }
    if (arg.rfind("--", 0) != 0) {
      result.positional.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    std::string value;
    bool has_value = false;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.erase(eq);
      has_value = true;
    }
    const Flag* flag = find(arg);
    if (flag == nullptr) {
      result.error = "unknown flag --" + arg;
      const std::string near = suggest(arg);
      if (!near.empty()) *result.error += " (did you mean --" + near + "?)";
      return result;
    }
    if (!has_value && !flag->is_bool) {
      if (i + 1 >= argc) {
        result.error = "flag --" + arg +
                       " needs a value but is last on the command line";
        return result;
      }
      value = argv[++i];
      has_value = true;
    }
    if (!flag->set(value)) {
      result.error = "bad value for --" + arg + ": '" + value + "'";
      if (!flag->choices.empty()) {
        *result.error += " (choices:";
        for (const std::string& choice : flag->choices) {
          *result.error += " " + choice;
        }
        *result.error += ")";
      }
      return result;
    }
  }
  return result;
}

std::vector<std::string> Cli::parse(int argc, char** argv) {
  ParseResult result = try_parse(argc, argv);
  if (result.help) {
    std::fputs(usage().c_str(), stdout);
    std::exit(0);
  }
  if (result.error.has_value()) {
    std::fprintf(stderr, "%s\n\n%s", result.error->c_str(), usage().c_str());
    std::exit(2);
  }
  return std::move(result.positional);
}

}  // namespace psph::util
