#include "util/cancel.h"

namespace psph::util::detail {

thread_local std::int64_t t_deadline_ns = 0;

void throw_deadline_exceeded() { throw DeadlineExceeded(); }

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace psph::util::detail
