#include "util/cancel.h"

namespace psph::util::detail {

thread_local std::int64_t t_deadline_ns = 0;
thread_local const std::atomic<bool>* t_cancel_flag = nullptr;

void throw_deadline_exceeded() { throw DeadlineExceeded(); }

void throw_operation_cancelled() { throw OperationCancelled(); }

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace psph::util::detail
