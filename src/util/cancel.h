#pragma once

// Cooperative per-thread deadlines for long-running queries.
//
// The serving layer (src/serve) gives each query a wall-clock budget; the
// engines honour it by calling poll_deadline() at natural safe points — the
// construction pipeline's level boundaries, the homology engine's
// per-dimension elimination boundaries, and every few thousand
// decision-search nodes. When the budget is exhausted the poll throws
// DeadlineExceeded, which unwinds the computation without leaving shared
// state behind (the engines build into local structures until they return).
//
// The deadline is thread-local: a worker sets it with a DeadlineScope before
// running a query, and every computation nested on that thread (including
// parallel_for bodies, which run inline when nested) sees it. With no scope
// active, poll_deadline() is a single thread-local load and compare — the
// batch binaries pay nothing for the hook.
//
// Cancellation never changes results: a query either completes with bytes
// identical to an undeadlined run, or throws and produces no result at all.
//
// Alongside deadlines there is a second, flag-based cooperative mechanism:
// a CancelScope installs a shared atomic flag on the thread, and
// poll_deadline() throws OperationCancelled once the flag is raised. The
// solvability engine's portfolio (src/solve) uses it for first-finisher-
// wins: the winning worker raises the flag and every other worker unwinds
// at its next poll. The two mechanisms compose — a deadline outranks a
// cancellation, so a query that is both late and raced still reports
// deadline_exceeded.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>

namespace psph::util {

/// Thrown by poll_deadline() when the active deadline has passed.
class DeadlineExceeded : public std::runtime_error {
 public:
  DeadlineExceeded() : std::runtime_error("deadline exceeded") {}
};

/// Thrown by poll_deadline() when the active CancelScope's flag is raised.
/// Internal control flow (a portfolio worker losing the race), not an
/// error: the raiser catches it and carries on with the winner's result.
class OperationCancelled : public std::runtime_error {
 public:
  OperationCancelled() : std::runtime_error("operation cancelled") {}
};

namespace detail {
// Absolute steady-clock deadline in nanoseconds since epoch; 0 = none.
extern thread_local std::int64_t t_deadline_ns;
// Cooperative cancellation flag installed by a CancelScope; null = none.
extern thread_local const std::atomic<bool>* t_cancel_flag;
[[noreturn]] void throw_deadline_exceeded();
[[noreturn]] void throw_operation_cancelled();
std::int64_t steady_now_ns();
}  // namespace detail

/// True while a DeadlineScope is active on this thread.
inline bool deadline_active() { return detail::t_deadline_ns != 0; }

/// This thread's absolute deadline in steady-clock nanoseconds (0 = none).
/// Lets a fork-join fan-out re-establish the caller's budget on pool
/// threads, which have their own (empty) thread-local deadline.
inline std::int64_t current_deadline_ns() { return detail::t_deadline_ns; }

/// Throws DeadlineExceeded if this thread's deadline has passed, then
/// OperationCancelled if an active CancelScope's flag is raised; no-op (two
/// thread-local loads) when neither is set. Safe to call from hot-ish
/// loops — the clock is only read while a deadline is active.
inline void poll_deadline() {
  const std::int64_t deadline = detail::t_deadline_ns;
  if (deadline != 0 && detail::steady_now_ns() >= deadline) {
    detail::throw_deadline_exceeded();
  }
  const std::atomic<bool>* flag = detail::t_cancel_flag;
  if (flag != nullptr && flag->load(std::memory_order_relaxed)) {
    detail::throw_operation_cancelled();
  }
}

/// RAII: sets this thread's deadline to an absolute steady-clock time point,
/// restoring the previous deadline (usually none) on destruction. Nested
/// scopes keep the *earlier* of the two deadlines, so an outer budget can
/// never be extended by an inner one.
class DeadlineScope {
 public:
  explicit DeadlineScope(std::chrono::steady_clock::time_point deadline)
      : DeadlineScope(std::chrono::duration_cast<std::chrono::nanoseconds>(
                          deadline.time_since_epoch())
                          .count()) {}

  /// Raw-nanosecond form, for re-installing a deadline captured with
  /// current_deadline_ns() on another thread (portfolio workers). ns == 0
  /// installs nothing (keeps the previous deadline, usually none).
  explicit DeadlineScope(std::int64_t ns) : previous_(detail::t_deadline_ns) {
    if (ns != 0) {
      detail::t_deadline_ns = previous_ == 0 ? ns : std::min(previous_, ns);
    }
  }
  ~DeadlineScope() { detail::t_deadline_ns = previous_; }

  DeadlineScope(const DeadlineScope&) = delete;
  DeadlineScope& operator=(const DeadlineScope&) = delete;

 private:
  std::int64_t previous_;
};

/// RAII: installs a cooperative cancellation flag on this thread, restoring
/// the previous flag (usually none) on destruction. The flag object must
/// outlive the scope; raising it makes every poll_deadline() on this thread
/// throw OperationCancelled until the scope ends. Nested scopes shadow the
/// outer flag for their extent.
class CancelScope {
 public:
  explicit CancelScope(const std::atomic<bool>& flag)
      : previous_(detail::t_cancel_flag) {
    detail::t_cancel_flag = &flag;
  }
  ~CancelScope() { detail::t_cancel_flag = previous_; }

  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  const std::atomic<bool>* previous_;
};

}  // namespace psph::util
