#pragma once

// Cooperative per-thread deadlines for long-running queries.
//
// The serving layer (src/serve) gives each query a wall-clock budget; the
// engines honour it by calling poll_deadline() at natural safe points — the
// construction pipeline's level boundaries, the homology engine's
// per-dimension elimination boundaries, and every few thousand
// decision-search nodes. When the budget is exhausted the poll throws
// DeadlineExceeded, which unwinds the computation without leaving shared
// state behind (the engines build into local structures until they return).
//
// The deadline is thread-local: a worker sets it with a DeadlineScope before
// running a query, and every computation nested on that thread (including
// parallel_for bodies, which run inline when nested) sees it. With no scope
// active, poll_deadline() is a single thread-local load and compare — the
// batch binaries pay nothing for the hook.
//
// Cancellation never changes results: a query either completes with bytes
// identical to an undeadlined run, or throws and produces no result at all.

#include <chrono>
#include <cstdint>
#include <stdexcept>

namespace psph::util {

/// Thrown by poll_deadline() when the active deadline has passed.
class DeadlineExceeded : public std::runtime_error {
 public:
  DeadlineExceeded() : std::runtime_error("deadline exceeded") {}
};

namespace detail {
// Absolute steady-clock deadline in nanoseconds since epoch; 0 = none.
extern thread_local std::int64_t t_deadline_ns;
[[noreturn]] void throw_deadline_exceeded();
std::int64_t steady_now_ns();
}  // namespace detail

/// True while a DeadlineScope is active on this thread.
inline bool deadline_active() { return detail::t_deadline_ns != 0; }

/// Throws DeadlineExceeded if this thread's deadline has passed; no-op (one
/// thread-local load) when no deadline is set. Safe to call from hot-ish
/// loops — the clock is only read while a deadline is active.
inline void poll_deadline() {
  const std::int64_t deadline = detail::t_deadline_ns;
  if (deadline == 0) return;
  if (detail::steady_now_ns() >= deadline) detail::throw_deadline_exceeded();
}

/// RAII: sets this thread's deadline to an absolute steady-clock time point,
/// restoring the previous deadline (usually none) on destruction. Nested
/// scopes keep the *earlier* of the two deadlines, so an outer budget can
/// never be extended by an inner one.
class DeadlineScope {
 public:
  explicit DeadlineScope(std::chrono::steady_clock::time_point deadline)
      : previous_(detail::t_deadline_ns) {
    const std::int64_t ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline.time_since_epoch())
            .count();
    detail::t_deadline_ns =
        previous_ == 0 ? ns : std::min(previous_, ns);
  }
  ~DeadlineScope() { detail::t_deadline_ns = previous_; }

  DeadlineScope(const DeadlineScope&) = delete;
  DeadlineScope& operator=(const DeadlineScope&) = delete;

 private:
  std::int64_t previous_;
};

}  // namespace psph::util
