#pragma once

// Wall-clock stopwatch used by bench binaries for coarse phase timing (the
// fine-grained measurements use google-benchmark).

#include <chrono>
#include <string>

namespace psph::util {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double millis() const { return seconds() * 1e3; }

  void reset() { start_ = clock::now(); }

  /// "12.3ms" / "4.56s" style rendering of the elapsed time.
  std::string pretty() const;

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace psph::util
