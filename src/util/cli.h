#pragma once

// Tiny declarative command-line flag parser for examples and bench binaries.
//
//   util::Cli cli("impossibility_explorer", "Explore protocol complexes");
//   int n = 3;
//   cli.flag("n", &n, "number of processes");
//   cli.parse(argc, argv);   // exits with usage on --help or bad input
//
// Flags are accepted as --name=value or --name value. Boolean flags accept
// bare --name as true. A literal `--` ends flag parsing: everything after
// it is positional, even if it starts with dashes. Unknown flags fail with
// a did-you-mean suggestion when a registered name is close, and --help
// auto-lists every registered flag with its type, default, and (for
// enumerated flags) the accepted choices.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace psph::util {

class Cli {
 public:
  Cli(std::string program, std::string description);

  Cli& flag(const std::string& name, int* target, const std::string& help);
  Cli& flag(const std::string& name, std::int64_t* target,
            const std::string& help);
  Cli& flag(const std::string& name, double* target, const std::string& help);
  Cli& flag(const std::string& name, bool* target, const std::string& help);
  Cli& flag(const std::string& name, std::string* target,
            const std::string& help);
  /// Enumerated string flag: the value must be one of `choices` (which the
  /// usage text lists); anything else is a parse error naming the options.
  Cli& flag_choice(const std::string& name, std::string* target,
                   std::vector<std::string> choices, const std::string& help);

  /// Outcome of try_parse: exactly one of {error set, help set, success}.
  struct ParseResult {
    /// Set on malformed input: unknown flag, a value-taking flag with no
    /// value (including one that is last on the command line), or a value
    /// the target type rejects (malformed/overflowing integer, bad double
    /// or bool). Targets touched before the error keep their parsed values.
    std::optional<std::string> error;
    /// --help / -h was seen (parsing stops there).
    bool help = false;
    std::vector<std::string> positional;
  };

  /// Non-exiting parse; the exit-on-error policy lives in parse() so tests
  /// and embedding callers can handle failures themselves.
  ParseResult try_parse(int argc, char** argv);

  /// Parses argv. On --help prints usage and exits 0; on malformed input
  /// prints the error plus usage to stderr and exits 2. Returns positional
  /// (non-flag) arguments.
  std::vector<std::string> parse(int argc, char** argv);

  /// Renders the usage string (also printed on --help).
  std::string usage() const;

 private:
  struct Flag {
    std::string name;
    std::string help;
    std::string default_repr;
    std::vector<std::string> choices;  // nonempty only for flag_choice
    bool is_bool = false;
    std::function<bool(const std::string&)> set;
  };

  Cli& add(Flag flag);
  const Flag* find(const std::string& name) const;
  /// Closest registered flag name within a small edit distance, or empty.
  std::string suggest(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::vector<Flag> flags_;
};

}  // namespace psph::util
