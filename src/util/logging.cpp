#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <stdexcept>

namespace psph::util {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::info)};
std::mutex g_output_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::debug:
      return "DEBUG";
    case LogLevel::info:
      return "INFO ";
    case LogLevel::warn:
      return "WARN ";
    case LogLevel::error:
      return "ERROR";
    case LogLevel::off:
      return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::debug;
  if (name == "info") return LogLevel::info;
  if (name == "warn") return LogLevel::warn;
  if (name == "error") return LogLevel::error;
  if (name == "off") return LogLevel::off;
  throw std::invalid_argument("unknown log level: " + name);
}

namespace detail {

bool level_enabled(LogLevel level) {
  return static_cast<int>(level) >=
         g_level.load(std::memory_order_relaxed);
}

LogLine::LogLine(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogLine::~LogLine() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  const double elapsed =
      std::chrono::duration<double>(clock::now() - start).count();

  // Trim the file path to its basename for compact output.
  const char* base = file_;
  for (const char* p = file_; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }

  std::lock_guard<std::mutex> lock(g_output_mutex);
  std::fprintf(stderr, "[%8.3f] %s %s:%d: %s\n", elapsed, level_tag(level_),
               base, line_, stream_.str().c_str());
}

}  // namespace detail

}  // namespace psph::util
