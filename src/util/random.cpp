#include "util/random.h"

#include <algorithm>

namespace psph::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // All-zero state is the one forbidden state for xoshiro; splitmix64 cannot
  // produce four zero outputs in a row from any seed, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: bound == 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t value = next();
    if (value >= threshold) return value % bound;
  }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::next_in: lo > hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {
    // Full 64-bit range requested.
    return static_cast<std::int64_t>(next());
  }
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::split() { return Rng(next()); }

Rng Rng::split(std::string_view label) const {
  // FNV-1a over the label bytes, then one splitmix64 step mixing it with
  // the construction seed. Deliberately independent of state_, so the
  // derived stream does not shift when the parent draws more or fewer
  // values (replay stability across schedule-format evolution).
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  std::uint64_t x = seed_ ^ h;
  return Rng(splitmix64(x));
}

std::vector<int> Rng::sample_without_replacement(int n, int k) {
  if (k < 0 || n < 0 || k > n) {
    throw std::invalid_argument("sample_without_replacement: bad args");
  }
  std::vector<int> pool(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pool[static_cast<std::size_t>(i)] = i;
  shuffle(pool);
  pool.resize(static_cast<std::size_t>(k));
  std::sort(pool.begin(), pool.end());
  return pool;
}

}  // namespace psph::util
