#include "util/parallel.h"

#include <cstdlib>
#include <memory>

#include "obs/obs.h"

namespace psph::util {

namespace {

// Pool observability: per-worker busy time and task throughput feed the
// stats table; the pool.work spans give one timeline track per worker in
// the Chrome trace. queue_depth samples how much of a batch was still
// unclaimed when each participant drained out.
obs::Counter g_obs_tasks("pool.tasks");
obs::Counter g_obs_busy_ns("pool.worker_busy_ns");
obs::Counter g_obs_inline_runs("pool.inline_runs");
obs::Gauge g_obs_batch("pool.batch_size");
obs::Gauge g_obs_depth("pool.queue_depth");

// True while the current thread is executing a parallel_for body; nested
// calls detect it and run inline instead of re-entering the shared pool.
thread_local bool t_inside_parallel = false;

int clamp_count(int n) {
  if (n > 0) return n;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int env_thread_count() {
  const char* raw = std::getenv("PSPH_THREADS");
  if (raw == nullptr || *raw == '\0') return 1;
  char* end = nullptr;
  const long parsed = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0') return 1;
  return clamp_count(static_cast<int>(parsed));
}

// 0 means "not yet resolved from the environment".
std::atomic<int> g_thread_count{0};

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;

}  // namespace

int thread_count() {
  int count = g_thread_count.load(std::memory_order_relaxed);
  if (count == 0) {
    count = env_thread_count();
    int expected = 0;
    if (!g_thread_count.compare_exchange_strong(expected, count,
                                                std::memory_order_relaxed)) {
      count = expected;
    }
  }
  return count;
}

void set_thread_count(int n) {
  g_thread_count.store(clamp_count(n), std::memory_order_relaxed);
}

ThreadPool::ThreadPool(int workers) {
  if (workers < 0) workers = 0;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::work_off(const std::function<void(std::size_t)>& fn,
                          std::size_t n) {
  const bool was_inside = t_inside_parallel;
  t_inside_parallel = true;
  const std::uint64_t busy_start =
      obs::enabled() ? obs::detail::now_ns() : 0;
  std::uint64_t executed = 0;
  {
    obs::SpanTimer span("pool.work");
    for (;;) {
      const std::size_t i =
          next_index_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      ++executed;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
    }
  }
  if (obs::enabled()) {
    g_obs_tasks.add(executed);
    g_obs_busy_ns.add(obs::detail::now_ns() - busy_start);
  }
  t_inside_parallel = was_inside;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stopping_ || epoch_ != seen_epoch; });
      if (stopping_) return;
      seen_epoch = epoch_;
      job = job_;
      n = job_size_;
    }
    work_off(*job, n);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--busy_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::run(std::size_t n,
                     const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  obs::SpanTimer span("pool.run", static_cast<std::int64_t>(n));
  if (obs::enabled()) g_obs_batch.set(static_cast<double>(n));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_size_ = n;
    next_index_.store(0, std::memory_order_relaxed);
    busy_ = workers_.size();
    first_error_ = nullptr;
    ++epoch_;
  }
  work_cv_.notify_all();
  work_off(fn, n);
  if (obs::enabled()) {
    // Indices still unclaimed when the caller drained out — nonzero means
    // the workers were saturated past the caller's exit.
    const std::size_t claimed = next_index_.load(std::memory_order_relaxed);
    g_obs_depth.set(claimed >= n ? 0.0 : static_cast<double>(n - claimed));
  }
  std::unique_lock<std::mutex> lock(mutex_);
  // run() returns only after every worker has left this epoch, so the next
  // epoch cannot race with a straggler still reading job_.
  done_cv_.wait(lock, [&] { return busy_ == 0; });
  job_ = nullptr;
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  const int threads = thread_count();
  if (threads <= 1 || n <= 1 || t_inside_parallel) {
    obs::SpanTimer span("pool.parallel_for", static_cast<std::int64_t>(n));
    if (obs::enabled() && !t_inside_parallel) {
      g_obs_inline_runs.add(1);
      g_obs_tasks.add(n);
    }
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  obs::SpanTimer span("pool.parallel_for", static_cast<std::int64_t>(n));
  // Holding g_pool_mutex across run() serializes concurrent top-level
  // parallel_for calls on the one shared pool; nested calls took the inline
  // branch above, so no thread waits on itself.
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool || g_pool->workers() != threads - 1) {
    g_pool = std::make_unique<ThreadPool>(threads - 1);
  }
  g_pool->run(n, fn);
}

}  // namespace psph::util
