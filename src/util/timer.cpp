#include "util/timer.h"

#include <cstdio>

namespace psph::util {

std::string Timer::pretty() const {
  char buffer[64];
  const double s = seconds();
  if (s < 1e-3) {
    std::snprintf(buffer, sizeof(buffer), "%.1fus", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buffer, sizeof(buffer), "%.1fms", s * 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2fs", s);
  }
  return buffer;
}

}  // namespace psph::util
