#pragma once

// Minimal leveled logging for the pseudosphere library.
//
// Usage:
//   PSPH_LOG(info) << "built complex with " << n << " facets";
//
// Levels are filtered at runtime via set_log_level(); the default level is
// `info`. Output goes to stderr so that bench/example stdout stays clean for
// machine-readable tables.

#include <sstream>
#include <string>

namespace psph::util {

enum class LogLevel : int {
  debug = 0,
  info = 1,
  warn = 2,
  error = 3,
  off = 4,
};

/// Sets the global minimum level that will be emitted.
void set_log_level(LogLevel level);

/// Returns the current global minimum level.
LogLevel log_level();

/// Parses "debug" / "info" / "warn" / "error" / "off"; throws on anything else.
LogLevel parse_log_level(const std::string& name);

namespace detail {

// Accumulates one log line and flushes it (with level tag and timestamp) on
// destruction. Instances are created by the PSPH_LOG macro and live for one
// full expression only.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// A sink that swallows everything; used when the level is filtered out so the
// stream expressions on the right of PSPH_LOG are never evaluated.
struct NullLine {
  template <typename T>
  NullLine& operator<<(const T&) {
    return *this;
  }
};

bool level_enabled(LogLevel level);

}  // namespace detail

}  // namespace psph::util

#define PSPH_LOG(level_name)                                                \
  if (!::psph::util::detail::level_enabled(                                 \
          ::psph::util::LogLevel::level_name)) {                            \
  } else                                                                    \
    ::psph::util::detail::LogLine(::psph::util::LogLevel::level_name,       \
                                  __FILE__, __LINE__)
