#pragma once

// Hash combinators shared by the interning arenas and simplex tables.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace psph::util {

/// Mixes a new value into an accumulating hash (boost-style combine with a
/// 64-bit golden-ratio constant).
inline std::size_t hash_combine(std::size_t seed, std::size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4);
  return seed;
}

/// Hash of a vector of hashable elements, order-sensitive.
template <typename T>
std::size_t hash_range(const std::vector<T>& items, std::size_t seed = 0) {
  std::hash<T> hasher;
  for (const T& item : items) seed = hash_combine(seed, hasher(item));
  return hash_combine(seed, items.size());
}

/// Deterministic 64-bit hash of a byte range (xxhash-style mixing). Unlike
/// std::hash, the value is specified by this implementation alone, so it is
/// stable across processes, platforms, and standard libraries — safe to use
/// in on-disk formats (store checksums, cache keys).
inline std::uint64_t hash_bytes(const void* data, std::size_t size,
                                std::uint64_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  const std::uint64_t prime1 = 0x9e3779b185ebca87ULL;
  const std::uint64_t prime2 = 0xc2b2ae3d27d4eb4fULL;
  const std::uint64_t prime3 = 0x165667b19e3779f9ULL;
  std::uint64_t h = seed + prime3 + size;
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t block = 0;
    for (int b = 0; b < 8; ++b) {
      block |= static_cast<std::uint64_t>(p[i + b]) << (8 * b);
    }
    block *= prime2;
    block = (block << 31) | (block >> 33);
    h ^= block * prime1;
    h = ((h << 27) | (h >> 37)) * prime1 + prime2;
  }
  for (; i < size; ++i) {
    h ^= static_cast<std::uint64_t>(p[i]) * prime3;
    h = ((h << 11) | (h >> 53)) * prime1;
  }
  h ^= h >> 33;
  h *= prime2;
  h ^= h >> 29;
  h *= prime3;
  h ^= h >> 32;
  return h;
}

/// Hash for std::pair, usable as a map hasher.
struct PairHash {
  template <typename A, typename B>
  std::size_t operator()(const std::pair<A, B>& p) const {
    return hash_combine(std::hash<A>{}(p.first), std::hash<B>{}(p.second));
  }
};

/// Hash for vectors, usable as a map hasher.
template <typename T>
struct VectorHash {
  std::size_t operator()(const std::vector<T>& v) const {
    return hash_range(v);
  }
};

}  // namespace psph::util
