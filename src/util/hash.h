#pragma once

// Hash combinators shared by the interning arenas and simplex tables.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace psph::util {

/// Mixes a new value into an accumulating hash (boost-style combine with a
/// 64-bit golden-ratio constant).
inline std::size_t hash_combine(std::size_t seed, std::size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4);
  return seed;
}

/// Hash of a vector of hashable elements, order-sensitive.
template <typename T>
std::size_t hash_range(const std::vector<T>& items, std::size_t seed = 0) {
  std::hash<T> hasher;
  for (const T& item : items) seed = hash_combine(seed, hasher(item));
  return hash_combine(seed, items.size());
}

/// Hash for std::pair, usable as a map hasher.
struct PairHash {
  template <typename A, typename B>
  std::size_t operator()(const std::pair<A, B>& p) const {
    return hash_combine(std::hash<A>{}(p.first), std::hash<B>{}(p.second));
  }
};

/// Hash for vectors, usable as a map hasher.
template <typename T>
struct VectorHash {
  std::size_t operator()(const std::vector<T>& v) const {
    return hash_range(v);
  }
};

}  // namespace psph::util
