#pragma once

// Deterministic, seedable PRNG (xoshiro256++) used everywhere randomness is
// needed: property tests, random adversaries, workload generators. We avoid
// std::mt19937 so that streams are identical across standard libraries and
// cheap to split.

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace psph::util {

class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value (UniformRandomBitGenerator interface).
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [0, bound). Throws if bound == 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Throws if lo > hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool next_bool(double p = 0.5);

  /// Returns a new independent generator split off this one's stream.
  Rng split();

  /// Labeled sub-stream derivation: a new generator whose seed is a
  /// splitmix64 mix of this generator's *construction seed* and a hash of
  /// `label`. Unlike split(), it does not consume from (or depend on) the
  /// parent's draw position, so the derived stream is stable no matter how
  /// many values the parent has produced in between — the property that
  /// keeps per-component streams (one per Byzantine process, one for the
  /// failure-detector oracle, ...) replay-stable when an unrelated
  /// component adds or removes draws. Distinct labels give independent
  /// streams; the same label always gives the same stream.
  Rng split(std::string_view label) const;

  /// The seed this generator was constructed from (split(label) anchors
  /// sub-streams to it).
  std::uint64_t seed() const { return seed_; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Uniformly chosen element; throws on empty input.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    if (items.empty()) throw std::invalid_argument("Rng::pick: empty");
    return items[static_cast<std::size_t>(next_below(items.size()))];
  }

  /// Uniform random subset of {0,...,n-1} with exactly k elements, sorted.
  std::vector<int> sample_without_replacement(int n, int k);

 private:
  std::uint64_t seed_ = 0;
  std::uint64_t state_[4];
};

}  // namespace psph::util
