#pragma once

// Deterministic fork-join parallelism for the connectivity engine.
//
// A process-wide pool of worker threads executes index ranges:
//
//   util::parallel_for(n, [&](std::size_t i) { results[i] = f(i); });
//
// The calling thread participates, so thread_count() == 1 means "run
// inline" and the pool holds thread_count() - 1 workers. Work is handed out
// as bare indices from an atomic counter and each index must write only its
// own output slot, which keeps results bit-identical at every thread count:
// parallelism changes *when* slot i is computed, never *what* it contains.
// The count comes from set_thread_count() (e.g. a --threads flag), else the
// PSPH_THREADS environment variable, else 1.
//
// parallel_for called from inside a parallel_for body runs inline on the
// calling worker (no nested fan-out, no deadlock).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace psph::util {

/// Number of threads parallel_for may use (including the caller), >= 1.
int thread_count();

/// Overrides the thread count; n <= 0 selects hardware_concurrency().
void set_thread_count(int n);

/// A fixed-size fork-join pool. Most code should use parallel_for (which
/// shares one pool sized by thread_count()); direct construction is for
/// tests and callers that need an isolated pool.
class ThreadPool {
 public:
  /// Spawns `workers` threads (0 is valid: run() then executes inline).
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(0)..fn(n-1) on the workers plus the calling thread and blocks
  /// until every index completes. The first exception thrown by fn is
  /// rethrown in the caller once the batch has drained. One run() at a
  /// time per pool.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  void work_off(const std::function<void(std::size_t)>& fn, std::size_t n);

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_size_ = 0;
  std::atomic<std::size_t> next_index_{0};
  std::size_t busy_ = 0;
  std::uint64_t epoch_ = 0;
  std::exception_ptr first_error_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(0)..fn(n-1) across the shared pool; blocks until done. Inline
/// when thread_count() == 1, n <= 1, or already inside a parallel_for.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

}  // namespace psph::util
