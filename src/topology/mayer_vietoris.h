#pragma once

// Theorem 2 (the Mayer-Vietoris consequence the paper's connectivity
// arguments lean on): if K and L are k-connected and K ∩ L is nonempty and
// (k-1)-connected, then K ∪ L is k-connected. This module measures all
// three sides of an instance so tests and benches can confirm the
// implication on concrete decompositions — including every prefix union in
// the Lemma 15/20 analyses.

#include "topology/complex.h"

namespace psph::topology {

struct Theorem2Instance {
  int k = 0;
  int connectivity_a = -2;
  int connectivity_b = -2;
  int connectivity_intersection = -2;
  int connectivity_union = -2;
  /// K and L are k-connected, K ∩ L nonempty and (k-1)-connected.
  bool hypothesis = false;
  /// K ∪ L is k-connected.
  bool conclusion = false;
};

/// Measures homological connectivity of K, L, K ∩ L, and K ∪ L and
/// evaluates Theorem 2's hypothesis and conclusion at level k.
Theorem2Instance check_theorem2(const SimplicialComplex& a,
                                const SimplicialComplex& b, int k);

}  // namespace psph::topology
