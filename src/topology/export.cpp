#include "topology/export.h"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace psph::topology {

std::string to_dot(const SimplicialComplex& k,
                   const std::function<std::string(VertexId)>& label) {
  std::ostringstream out;
  out << "graph complex {\n  node [shape=circle];\n";
  for (VertexId v : k.vertex_ids()) {
    out << "  v" << v;
    if (label) out << " [label=\"" << label(v) << "\"]";
    out << ";\n";
  }
  for (const Simplex& edge : k.simplices_of_dim(1)) {
    out << "  v" << edge[0] << " -- v" << edge[1] << ";\n";
  }
  out << "}\n";
  return out.str();
}

std::string to_off(const SimplicialComplex& k) {
  const std::vector<VertexId> vertices = k.vertex_ids();
  std::unordered_map<VertexId, std::size_t> index;
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    index.emplace(vertices[i], i);
  }
  const std::vector<Simplex> triangles = k.simplices_of_dim(2);

  std::ostringstream out;
  out << "OFF\n"
      << vertices.size() << " " << triangles.size() << " 0\n";
  // Deterministic layout: vertices evenly spaced on a unit circle, with a
  // small z offset cycling to break coplanarity for viewers.
  const double tau = 6.283185307179586;
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const double angle =
        tau * static_cast<double>(i) / static_cast<double>(vertices.size());
    const double z = 0.15 * static_cast<double>(i % 3);
    out << std::cos(angle) << " " << std::sin(angle) << " " << z << "\n";
  }
  for (const Simplex& t : triangles) {
    out << "3 " << index.at(t[0]) << " " << index.at(t[1]) << " "
        << index.at(t[2]) << "\n";
  }
  return out.str();
}

std::string to_facet_listing(const SimplicialComplex& k) {
  std::ostringstream out;
  for (const Simplex& facet : k.facets()) {
    const auto& vertices = facet.vertices();
    for (std::size_t i = 0; i < vertices.size(); ++i) {
      if (i > 0) out << " ";
      out << vertices[i];
    }
    out << "\n";
  }
  return out.str();
}

SimplicialComplex from_facet_listing(const std::string& text) {
  SimplicialComplex result;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::vector<VertexId> vertices;
    long long value = 0;
    while (fields >> value) {
      if (value < 0) {
        throw std::invalid_argument("from_facet_listing: negative vertex id");
      }
      vertices.push_back(static_cast<VertexId>(value));
    }
    if (!fields.eof()) {
      throw std::invalid_argument("from_facet_listing: malformed line: " +
                                  line);
    }
    if (!vertices.empty()) result.add_facet(Simplex(std::move(vertices)));
  }
  return result;
}

}  // namespace psph::topology
