#include "topology/components.h"

namespace psph::topology {

void UnionFind::add(VertexId v) {
  if (parent_.emplace(v, v).second) {
    rank_.emplace(v, 0);
    ++components_;
  }
}

VertexId UnionFind::find(VertexId v) {
  VertexId root = v;
  while (parent_.at(root) != root) root = parent_.at(root);
  // Path compression.
  while (parent_.at(v) != root) {
    const VertexId next = parent_.at(v);
    parent_[v] = root;
    v = next;
  }
  return root;
}

void UnionFind::unite(VertexId a, VertexId b) {
  add(a);
  add(b);
  VertexId ra = find(a);
  VertexId rb = find(b);
  if (ra == rb) return;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  --components_;
}

bool UnionFind::same(VertexId a, VertexId b) {
  if (parent_.count(a) == 0 || parent_.count(b) == 0) return false;
  return find(a) == find(b);
}

std::size_t connected_component_count(const SimplicialComplex& k) {
  UnionFind dsu;
  k.for_each_facet([&](const Simplex& facet) {
    const auto& vertices = facet.vertices();
    dsu.add(vertices[0]);
    for (std::size_t i = 1; i < vertices.size(); ++i) {
      dsu.unite(vertices[0], vertices[i]);
    }
  });
  return dsu.count();
}

bool is_connected(const SimplicialComplex& k) {
  return connected_component_count(k) == 1;
}

}  // namespace psph::topology
