#include "topology/operations.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace psph::topology {

SimplicialComplex union_of(const SimplicialComplex& a,
                           const SimplicialComplex& b) {
  SimplicialComplex result = a;
  result.merge(b);
  return result;
}

SimplicialComplex union_of(const std::vector<SimplicialComplex>& parts) {
  SimplicialComplex result;
  for (const SimplicialComplex& part : parts) result.merge(part);
  return result;
}

SimplicialComplex intersection_of(const SimplicialComplex& a,
                                  const SimplicialComplex& b) {
  // σ ∈ K ∩ L iff σ is a face of some facet of K and some facet of L, i.e.
  // a face of (fK ∩ fL) for some facet pair. The pairwise meets generate the
  // intersection; add_facet keeps only the maximal ones.
  SimplicialComplex result;
  const std::vector<Simplex> facets_a = a.facets();
  const std::vector<Simplex> facets_b = b.facets();
  for (const Simplex& fa : facets_a) {
    for (const Simplex& fb : facets_b) {
      Simplex meet = fa.intersect(fb);
      if (!meet.empty()) result.add_facet(std::move(meet));
    }
  }
  return result;
}

SimplicialComplex star(const SimplicialComplex& k, const Simplex& s) {
  SimplicialComplex result;
  k.for_each_facet([&](const Simplex& facet) {
    if (s.is_face_of(facet)) result.add_facet(facet);
  });
  return result;
}

SimplicialComplex link(const SimplicialComplex& k, const Simplex& s) {
  SimplicialComplex result;
  k.for_each_facet([&](const Simplex& facet) {
    if (!s.is_face_of(facet)) return;
    // The link contribution of this facet is facet \ s.
    Simplex remainder = facet;
    for (VertexId v : s.vertices()) remainder = remainder.without_vertex(v);
    if (!remainder.empty()) result.add_facet(std::move(remainder));
  });
  return result;
}

SimplicialComplex skeleton(const SimplicialComplex& k, int d) {
  SimplicialComplex result;
  if (d < 0) return result;
  k.for_each_facet([&](const Simplex& facet) {
    if (facet.dimension() <= d) {
      result.add_facet(facet);
    } else {
      for (Simplex& face : facet.faces_of_dim(d)) {
        result.add_facet(std::move(face));
      }
    }
  });
  return result;
}

SimplicialComplex join(const SimplicialComplex& a,
                       const SimplicialComplex& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  // Vertex sets must be disjoint for the join to be a simplicial complex.
  const std::vector<VertexId> va = a.vertex_ids();
  const std::vector<VertexId> vb = b.vertex_ids();
  std::vector<VertexId> common;
  std::set_intersection(va.begin(), va.end(), vb.begin(), vb.end(),
                        std::back_inserter(common));
  if (!common.empty()) {
    throw std::invalid_argument("join: vertex sets are not disjoint");
  }
  SimplicialComplex result;
  a.for_each_facet([&](const Simplex& fa) {
    b.for_each_facet([&](const Simplex& fb) {
      result.add_facet(fa.unite(fb));
    });
  });
  return result;
}

SimplicialComplex induced(const SimplicialComplex& k,
                          const std::vector<VertexId>& keep) {
  std::unordered_set<VertexId> allowed(keep.begin(), keep.end());
  SimplicialComplex result;
  k.for_each_facet([&](const Simplex& facet) {
    std::vector<VertexId> kept;
    for (VertexId v : facet.vertices()) {
      if (allowed.count(v) != 0) kept.push_back(v);
    }
    if (!kept.empty()) result.add_facet(Simplex(std::move(kept)));
  });
  return result;
}

SimplicialComplex from_simplex(const Simplex& s) {
  SimplicialComplex result;
  if (!s.empty()) result.add_facet(s);
  return result;
}

SimplicialComplex boundary_complex(const Simplex& s) {
  SimplicialComplex result;
  if (s.dimension() < 1) return result;  // a vertex has empty boundary
  for (std::size_t i = 0; i < s.size(); ++i) {
    result.add_facet(s.face_without_index(i));
  }
  return result;
}

}  // namespace psph::topology
