#pragma once

// Facet-based simplicial complexes (Section 3).
//
// A complex is represented by its maximal simplexes; closure under
// containment is implicit, and faces are enumerated on demand. add_facet
// maintains maximality: dominated insertions are dropped and newly dominated
// facets are removed, so unions of pseudospheres deduplicate automatically.

#include <cstddef>
#include <functional>
#include <limits>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "topology/simplex.h"
#include "topology/types.h"

namespace psph::topology {

class SimplicialComplex {
 public:
  SimplicialComplex() = default;

  /// Inserts `s` as a (candidate) facet. No-op if some existing facet
  /// already contains it; removes existing facets that it contains.
  /// Inserting the empty simplex is rejected.
  void add_facet(Simplex s);

  /// Inserts every facet of `other`.
  void merge(const SimplicialComplex& other);

  /// True if the complex has no simplexes at all.
  bool empty() const { return live_count_ == 0; }

  /// Largest dimension of any facet; -1 for the empty complex.
  int dimension() const;

  std::size_t facet_count() const { return live_count_; }

  /// Snapshot of the current facets in deterministic (sorted) order.
  std::vector<Simplex> facets() const;

  /// Calls `fn` for each facet (unspecified order, no allocation of a copy).
  void for_each_facet(const std::function<void(const Simplex&)>& fn) const;

  /// True if `s` is a face of some facet. The empty simplex is contained in
  /// every nonempty complex.
  bool contains(const Simplex& s) const;

  /// All distinct d-simplexes (deterministic sorted order).
  std::vector<Simplex> simplices_of_dim(int d) const;

  /// Count of distinct d-simplexes.
  std::size_t count_of_dim(int d) const;

  /// All vertex ids used by at least one facet, sorted.
  std::vector<VertexId> vertex_ids() const;

  /// f-vector: entry d is the number of d-simplexes, d = 0..dimension().
  std::vector<std::size_t> f_vector() const;

  /// Euler characteristic  Σ (-1)^d f_d.
  long long euler_characteristic() const;

  /// True if all facets have the same dimension.
  bool is_pure() const;

  /// Exact equality as sets of facets (hence as complexes).
  bool operator==(const SimplicialComplex& other) const;
  bool operator!=(const SimplicialComplex& other) const {
    return !(*this == other);
  }

  /// True if every facet of *this is contained in `other` (subcomplex test).
  bool is_subcomplex_of(const SimplicialComplex& other) const;

  /// Applies a vertex map to every facet, producing the image complex. The
  /// map must be defined for every vertex in use; it need not be injective
  /// (a non-injective simplicial map collapses simplexes), but duplicate
  /// image vertices within one facet are rejected to catch accidents —
  /// pass allow_collapse = true to permit them.
  SimplicialComplex apply_vertex_map(
      const std::function<VertexId(VertexId)>& map,
      bool allow_collapse = false) const;

  std::string to_string() const;

 private:
  friend class FacetIndex;

  bool dominated(const Simplex& s) const;

  // Stable slots; erased facets become empty simplexes (tombstones).
  std::vector<Simplex> slots_;
  std::size_t live_count_ = 0;
  // Conservative bounds on live facet dimensions (never shrunk on removal);
  // they gate the domination scans so pure-complex bulk inserts are O(1).
  int min_facet_dim_ = std::numeric_limits<int>::max();
  int max_facet_dim_ = -1;
  // vertex -> slot indices of live facets containing it (may contain stale
  // slot references which are skipped on read).
  std::unordered_map<VertexId, std::vector<std::size_t>> by_vertex_;
  std::unordered_set<Simplex, SimplexHash> facet_set_;
};

}  // namespace psph::topology
