#pragma once

// Facet-based simplicial complexes (Section 3).
//
// A complex is represented by its maximal simplexes; closure under
// containment is implicit, and faces are enumerated on demand. add_facet
// maintains maximality: dominated insertions are dropped and newly dominated
// facets are removed, so unions of pseudospheres deduplicate automatically.
//
// Face queries (simplices_of_dim, count_of_dim, f_vector,
// euler_characteristic, boundary matrices) all read one lazily built
// per-dimension face table. The cache is invalidated by any mutation
// (add_facet / merge), so references returned by simplices_of_dim /
// face_index_of_dim are valid only until the next mutation. Concurrent
// *const* access is safe: the lazy build is guarded by a mutex behind an
// atomic validity flag (warm_face_cache() lets callers pay the build before
// fanning out). Mutation requires external synchronization, as for standard
// containers.

#include <atomic>
#include <cstddef>
#include <functional>
#include <limits>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "topology/simplex.h"
#include "topology/types.h"

namespace psph::topology {

class SimplicialComplex {
 public:
  SimplicialComplex() = default;
  SimplicialComplex(const SimplicialComplex& other);
  SimplicialComplex& operator=(const SimplicialComplex& other);
  SimplicialComplex(SimplicialComplex&& other) noexcept;
  SimplicialComplex& operator=(SimplicialComplex&& other) noexcept;

  /// Inserts `s` as a (candidate) facet. No-op if some existing facet
  /// already contains it; removes existing facets that it contains.
  /// Inserting the empty simplex is rejected.
  void add_facet(Simplex s);

  /// Inserts a batch of candidate facets, equivalent to add_facet in a
  /// loop. When every incoming facet has one dimension d and the complex is
  /// empty or pure of the same dimension (the common case when unioning
  /// pseudospheres), insertion takes a fast lane that skips the per-facet
  /// domination scans entirely — only the exact-duplicate hash check
  /// remains. Mixed-dimension batches fall back to add_facet per facet.
  void add_facets(std::vector<Simplex> facets);

  /// Pre-sizes the facet tables for `additional` more facets.
  void reserve(std::size_t additional);

  /// Inserts every facet of `other`.
  void merge(const SimplicialComplex& other);

  /// True if the complex has no simplexes at all.
  bool empty() const { return live_count_ == 0; }

  /// Largest dimension of any facet; -1 for the empty complex. O(1).
  int dimension() const { return max_facet_dim_; }

  std::size_t facet_count() const { return live_count_; }

  /// Snapshot of the current facets in deterministic (sorted) order.
  std::vector<Simplex> facets() const;

  /// Calls `fn` for each facet (unspecified order, no allocation of a copy).
  void for_each_facet(const std::function<void(const Simplex&)>& fn) const;

  /// True if `s` is a face of some facet. The empty simplex is contained in
  /// every nonempty complex.
  bool contains(const Simplex& s) const;

  /// All distinct d-simplexes in sorted order, from the face cache. The
  /// reference is valid until the next mutation. Empty for d outside
  /// [0, dimension()].
  const std::vector<Simplex>& simplices_of_dim(int d) const;

  /// Index map of the d-simplexes: maps each simplex to its position in
  /// simplices_of_dim(d). Same lifetime contract as simplices_of_dim.
  /// Transparent hash/equality: lookups accept a sorted vertex vector
  /// without constructing a Simplex.
  const std::unordered_map<Simplex, std::size_t, SimplexHash, SimplexEq>&
  face_index_of_dim(int d) const;

  /// Flattened boundary-face indices of the d-simplexes, d in
  /// [1, dimension()]: entry c*(d+1) + omit is the position in
  /// simplices_of_dim(d-1) of the face of the c-th d-simplex obtained by
  /// omitting its omit-th vertex (the boundary operator's row index; the
  /// incidence sign is (-1)^omit). Built with the face cache, so boundary
  /// matrices and Morse reductions never re-hash faces. Empty for d
  /// outside [1, dimension()]; same lifetime contract as simplices_of_dim.
  const std::vector<std::size_t>& boundary_links_of_dim(int d) const;

  /// Count of distinct d-simplexes. O(1) once the face cache is warm.
  std::size_t count_of_dim(int d) const;

  /// Builds the face cache if stale. Purely an optimization for callers
  /// about to issue face queries from several threads: the accessors also
  /// build lazily (under a mutex), so skipping this is never incorrect.
  void warm_face_cache() const;

  /// All vertex ids used by at least one facet, sorted. Does not touch the
  /// face cache (linear in the facet representation).
  std::vector<VertexId> vertex_ids() const;

  /// f-vector: entry d is the number of d-simplexes, d = 0..dimension().
  std::vector<std::size_t> f_vector() const;

  /// Euler characteristic  Σ (-1)^d f_d.
  long long euler_characteristic() const;

  /// True if all facets have the same dimension.
  bool is_pure() const;

  /// Exact equality as sets of facets (hence as complexes).
  bool operator==(const SimplicialComplex& other) const;
  bool operator!=(const SimplicialComplex& other) const {
    return !(*this == other);
  }

  /// True if every facet of *this is contained in `other` (subcomplex test).
  bool is_subcomplex_of(const SimplicialComplex& other) const;

  /// Applies a vertex map to every facet, producing the image complex. The
  /// map must be defined for every vertex in use; it need not be injective
  /// (a non-injective simplicial map collapses simplexes), but duplicate
  /// image vertices within one facet are rejected to catch accidents —
  /// pass allow_collapse = true to permit them.
  SimplicialComplex apply_vertex_map(
      const std::function<VertexId(VertexId)>& map,
      bool allow_collapse = false) const;

  std::string to_string() const;

 private:
  friend class FacetIndex;

  // One dimension's slice of the face lattice: the sorted d-simplex list,
  // the rank of each simplex in it (boundary-operator row/col ids), and the
  // flattened codim-1 face links ((d+1) row indices per face, omit order).
  struct FaceTable {
    std::vector<Simplex> faces;
    std::unordered_map<Simplex, std::size_t, SimplexHash, SimplexEq> index;
    std::vector<std::size_t> boundary_links;
  };

  bool dominated(const Simplex& s) const;
  void invalidate_face_cache();
  void build_face_cache() const;
  const FaceTable* face_table(int d) const;

  // Stable slots; erased facets become empty simplexes (tombstones).
  std::vector<Simplex> slots_;
  std::size_t live_count_ = 0;
  // Bounds on live facet dimensions, gating the domination scans so
  // pure-complex bulk inserts are O(1). The max is *exact*: add_facet only
  // removes facets strictly smaller than the facet it inserts, so the
  // maximum can never be held by a tombstone. The min is conservative
  // (never shrunk on removal).
  int min_facet_dim_ = std::numeric_limits<int>::max();
  int max_facet_dim_ = -1;
  // vertex -> slot indices of live facets containing it (may contain stale
  // slot references which are skipped on read).
  std::unordered_map<VertexId, std::vector<std::size_t>> by_vertex_;
  std::unordered_set<Simplex, SimplexHash> facet_set_;

  // Lazily built face lattice, entry d = FaceTable for the d-simplexes.
  // Double-checked: readers take the mutex only while the flag is false.
  mutable std::vector<FaceTable> face_cache_;
  mutable std::atomic<bool> face_cache_valid_{false};
  mutable std::mutex face_cache_mutex_;
};

}  // namespace psph::topology
