#include "topology/subdivision.h"

#include <functional>
#include <unordered_map>

namespace psph::topology {

Subdivision barycentric_subdivision(const SimplicialComplex& k) {
  Subdivision result;
  std::unordered_map<Simplex, VertexId, SimplexHash> vertex_of;

  const auto intern = [&](const Simplex& s) -> VertexId {
    const auto it = vertex_of.find(s);
    if (it != vertex_of.end()) return it->second;
    const VertexId id = static_cast<VertexId>(result.carriers.size());
    result.carriers.push_back(s);
    vertex_of.emplace(s, id);
    return id;
  };

  // For each facet, enumerate the maximal chains of its face poset. A chain
  // through a facet of dimension d has the form σ_0 ⊂ ... ⊂ σ_d with
  // dim σ_i = i; equivalently an ordering v_0, v_1, ... of the facet's
  // vertices where σ_i = {v_0..v_i}. So chains correspond to permutations.
  k.for_each_facet([&](const Simplex& facet) {
    std::vector<VertexId> order(facet.vertices());
    // Heap's-algorithm-free approach: recurse over "which vertex joins next".
    std::vector<VertexId> chain_vertices;
    std::vector<VertexId> prefix;
    std::function<void(std::vector<VertexId>&)> recurse =
        [&](std::vector<VertexId>& remaining) {
          if (remaining.empty()) {
            result.complex.add_facet(Simplex(chain_vertices));
            return;
          }
          for (std::size_t i = 0; i < remaining.size(); ++i) {
            const VertexId v = remaining[i];
            prefix.push_back(v);
            chain_vertices.push_back(intern(Simplex(prefix)));
            remaining.erase(remaining.begin() +
                            static_cast<std::ptrdiff_t>(i));
            recurse(remaining);
            remaining.insert(
                remaining.begin() + static_cast<std::ptrdiff_t>(i), v);
            chain_vertices.pop_back();
            prefix.pop_back();
          }
        };
    recurse(order);
  });
  return result;
}

Subdivision iterated_barycentric_subdivision(const SimplicialComplex& k,
                                             int rounds) {
  Subdivision result;
  result.complex = k;
  // Identity carriers for round zero: each vertex carries itself.
  for (VertexId v : k.vertex_ids()) {
    while (result.carriers.size() <= v) {
      result.carriers.push_back(Simplex());
    }
    result.carriers[v] = Simplex({v});
  }
  for (int i = 0; i < rounds; ++i) {
    result = barycentric_subdivision(result.complex);
  }
  return result;
}

}  // namespace psph::topology
