#pragma once

// Barycentric subdivision.
//
// sd(K) has one vertex per nonempty simplex of K, and a facet per maximal
// chain σ_0 ⊂ σ_1 ⊂ ... ⊂ σ_d of simplexes of K. Subdivision is the
// classical bridge between combinatorics and topology (it preserves the
// geometric realization); we use it for the Sperner's-lemma machinery
// behind Theorem 9 and as a stress workload for the homology engine.

#include <vector>

#include "topology/complex.h"

namespace psph::topology {

struct Subdivision {
  /// The subdivided complex. Vertex ids index `carriers`.
  SimplicialComplex complex;
  /// carriers[v] is the simplex of the original complex whose barycenter
  /// the new vertex v represents.
  std::vector<Simplex> carriers;
};

/// One round of barycentric subdivision.
Subdivision barycentric_subdivision(const SimplicialComplex& k);

/// `rounds`-fold iterated subdivision (carriers refer to the previous round).
Subdivision iterated_barycentric_subdivision(const SimplicialComplex& k,
                                             int rounds);

}  // namespace psph::topology
