#pragma once

// Isomorphism utilities (Section 3: K ≅ L via a bijective simplicial map).
//
// General simplicial-complex isomorphism is as hard as graph isomorphism,
// but the paper's isomorphisms (Lemmas 4, 11, 14, 19) all come with explicit
// vertex maps. We therefore provide:
//   * exact verification that a given vertex map is an isomorphism,
//   * cheap invariant comparison (f-vector, vertex degree multiset) that can
//     refute isomorphism and serves as a property-test oracle,
//   * a backtracking search usable on small complexes.

#include <optional>
#include <unordered_map>

#include "topology/complex.h"

namespace psph::topology {

using VertexMap = std::unordered_map<VertexId, VertexId>;

/// True iff `map` is defined on every vertex of `a`, injective, and carries
/// the facet set of `a` exactly onto the facet set of `b`.
bool is_isomorphism(const SimplicialComplex& a, const SimplicialComplex& b,
                    const VertexMap& map);

/// True iff `map` is an isomorphism from `k` onto itself (the symmetry-group
/// membership test used by the orbit-quotient pipeline).
bool is_automorphism(const SimplicialComplex& k, const VertexMap& map);

/// Invariant fingerprint: (f-vector, sorted multiset of vertex facet-degrees,
/// sorted multiset of facet dimensions). Equal complexes agree; unequal
/// fingerprints refute isomorphism.
struct ComplexFingerprint {
  std::vector<std::size_t> f_vector;
  std::vector<std::size_t> vertex_degrees;
  std::vector<int> facet_dimensions;

  bool operator==(const ComplexFingerprint& other) const = default;
};

ComplexFingerprint fingerprint(const SimplicialComplex& k);

/// Backtracking isomorphism search. Exponential; intended for the small
/// complexes of unit tests and Lemma 4 sweeps. Returns a witness map if an
/// isomorphism exists.
std::optional<VertexMap> find_isomorphism(const SimplicialComplex& a,
                                          const SimplicialComplex& b);

}  // namespace psph::topology
