#include "topology/simplex.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "math/combinatorics.h"

namespace psph::topology {

Simplex::Simplex(std::vector<VertexId> vertices)
    : vertices_(std::move(vertices)) {
  std::sort(vertices_.begin(), vertices_.end());
  if (std::adjacent_find(vertices_.begin(), vertices_.end()) !=
      vertices_.end()) {
    throw std::invalid_argument("Simplex: duplicate vertex");
  }
}

Simplex::Simplex(std::initializer_list<VertexId> vertices)
    : Simplex(std::vector<VertexId>(vertices)) {}

bool Simplex::contains(VertexId v) const {
  return std::binary_search(vertices_.begin(), vertices_.end(), v);
}

bool Simplex::is_face_of(const Simplex& other) const {
  return std::includes(other.vertices_.begin(), other.vertices_.end(),
                       vertices_.begin(), vertices_.end());
}

Simplex Simplex::face_without_index(std::size_t index) const {
  if (index >= vertices_.size()) {
    throw std::out_of_range("Simplex::face_without_index");
  }
  Simplex result;
  result.vertices_ = vertices_;
  result.vertices_.erase(result.vertices_.begin() +
                         static_cast<std::ptrdiff_t>(index));
  return result;
}

Simplex Simplex::without_vertex(VertexId v) const {
  Simplex result;
  result.vertices_.reserve(vertices_.size());
  for (VertexId u : vertices_) {
    if (u != v) result.vertices_.push_back(u);
  }
  return result;
}

Simplex Simplex::intersect(const Simplex& other) const {
  Simplex result;
  std::set_intersection(vertices_.begin(), vertices_.end(),
                        other.vertices_.begin(), other.vertices_.end(),
                        std::back_inserter(result.vertices_));
  return result;
}

Simplex Simplex::unite(const Simplex& other) const {
  Simplex result;
  std::set_union(vertices_.begin(), vertices_.end(), other.vertices_.begin(),
                 other.vertices_.end(), std::back_inserter(result.vertices_));
  return result;
}

std::vector<Simplex> Simplex::faces_of_dim(int d) const {
  std::vector<Simplex> result;
  if (d < 0 || d > dimension()) return result;
  for (const std::vector<int>& combo :
       math::combinations(static_cast<int>(vertices_.size()), d + 1)) {
    Simplex face;
    face.vertices_.reserve(combo.size());
    for (int index : combo) {
      face.vertices_.push_back(vertices_[static_cast<std::size_t>(index)]);
    }
    result.push_back(std::move(face));
  }
  return result;
}

std::vector<Simplex> Simplex::all_faces() const {
  std::vector<Simplex> result;
  for (int d = 0; d <= dimension(); ++d) {
    std::vector<Simplex> layer = faces_of_dim(d);
    result.insert(result.end(), std::make_move_iterator(layer.begin()),
                  std::make_move_iterator(layer.end()));
  }
  return result;
}

std::string Simplex::to_string() const {
  std::ostringstream out;
  out << "{";
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    if (i > 0) out << ",";
    out << vertices_[i];
  }
  out << "}";
  return out.str();
}

}  // namespace psph::topology
