#pragma once

// VertexArena interns (process id, state id) pairs into dense VertexIds.
//
// The paper labels every vertex of a protocol complex with a process id and
// a local state. Hash-consing the labels means that indistinguishable local
// states arising in different branches of the r-round recursion map to the
// *same* vertex — which is precisely how the constructions glue pseudospheres
// together along shared faces.

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "topology/types.h"
#include "util/hash.h"

namespace psph::topology {

struct VertexLabel {
  ProcessId pid = -1;
  StateId state = 0;

  bool operator==(const VertexLabel& other) const {
    return pid == other.pid && state == other.state;
  }
};

struct VertexLabelHash {
  std::size_t operator()(const VertexLabel& label) const {
    return util::hash_combine(
        std::hash<ProcessId>{}(label.pid),
        std::hash<StateId>{}(label.state));
  }
};

class VertexArena {
 public:
  /// Returns the unique VertexId for this label, creating it if new.
  VertexId intern(ProcessId pid, StateId state) {
    const VertexLabel label{pid, state};
    const auto it = index_.find(label);
    if (it != index_.end()) return it->second;
    const VertexId id = static_cast<VertexId>(labels_.size());
    labels_.push_back(label);
    index_.emplace(label, id);
    return id;
  }

  /// Read-only lookup: the id for this label, or nullopt if it was never
  /// interned. Never mutates, so it is safe to call concurrently with other
  /// const access — the parallel construction pipeline's scratch arenas
  /// resolve against the shared arena this way during fan-out.
  std::optional<VertexId> find(ProcessId pid, StateId state) const {
    const auto it = index_.find(VertexLabel{pid, state});
    if (it == index_.end()) return std::nullopt;
    return it->second;
  }

  const VertexLabel& label(VertexId id) const {
    if (id >= labels_.size()) throw std::out_of_range("VertexArena::label");
    return labels_[id];
  }

  ProcessId pid(VertexId id) const { return label(id).pid; }
  StateId state(VertexId id) const { return label(id).state; }

  std::size_t size() const { return labels_.size(); }

 private:
  std::vector<VertexLabel> labels_;
  std::unordered_map<VertexLabel, VertexId, VertexLabelHash> index_;
};

}  // namespace psph::topology
