#include "topology/homology.h"

#include <algorithm>
#include <sstream>

#include "math/smith.h"
#include "obs/obs.h"
#include "topology/collapse.h"
#include "util/cancel.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace psph::topology {

namespace {

// Homology observability: per-dimension rank and SNF spans (the trace arg
// is the boundary dimension), plus engine-level counters.
obs::Counter g_obs_reports("homology.reports");
obs::Counter g_obs_rank_dims("homology.rank_dims");
obs::Counter g_obs_snf_dims("homology.snf_dims");

}  // namespace

math::SparseMatrix boundary_matrix(const SimplicialComplex& k, int d) {
  if (d < 0) throw std::invalid_argument("boundary_matrix: d < 0");
  const std::vector<Simplex>& columns = k.simplices_of_dim(d);

  if (d == 0) {
    // Augmentation C_0 → Z: one row of ones.
    math::SparseMatrix matrix(1, columns.size());
    for (std::size_t c = 0; c < columns.size(); ++c) matrix.set(0, c, 1);
    return matrix;
  }

  // The face cache records each d-simplex's codim-1 face indices when it
  // builds the (d-1)-level, so assembling ∂_d is a pure table read — no
  // hashing and no face construction on this path.
  const std::vector<std::size_t>& links = k.boundary_links_of_dim(d);
  const std::size_t faces_per_col = static_cast<std::size_t>(d) + 1;

  math::SparseMatrix matrix(k.count_of_dim(d - 1), columns.size());
  {
    // One counting pass sizes every row exactly, so the column-major fill
    // below never reallocates.
    std::vector<std::uint32_t> row_count(matrix.rows(), 0);
    for (std::size_t e = 0; e < columns.size() * faces_per_col; ++e) {
      ++row_count[links[e]];
    }
    for (std::size_t r = 0; r < matrix.rows(); ++r) {
      matrix.reserve_row(r, row_count[r]);
    }
  }
  for (std::size_t c = 0; c < columns.size(); ++c) {
    std::int64_t sign = 1;
    for (std::size_t omit = 0; omit < faces_per_col; ++omit) {
      matrix.set(links[c * faces_per_col + omit], c, sign);
      sign = -sign;
    }
  }
  return matrix;
}

HomologyReport reduced_homology(const SimplicialComplex& k,
                                const HomologyOptions& options) {
  obs::SpanTimer whole_span("homology.reduced",
                            static_cast<std::int64_t>(options.max_dim));
  g_obs_reports.add(1);
  HomologyReport report;
  report.nonempty = !k.empty();
  report.exact = options.exact;
  report.reduced_betti.assign(static_cast<std::size_t>(options.max_dim) + 1,
                              0);
  report.torsion.assign(static_cast<std::size_t>(options.max_dim) + 1, {});
  if (!report.nonempty) return report;

  // n_d and rank(∂_d) for d = 0..max_dim+1; ∂_0 is the augmentation.
  std::vector<std::size_t> counts(
      static_cast<std::size_t>(options.max_dim) + 2, 0);
  std::vector<std::size_t> ranks(
      static_cast<std::size_t>(options.max_dim) + 2, 0);
  std::vector<math::SparseMatrix> boundaries(
      static_cast<std::size_t>(options.max_dim) + 2);

  // One face enumeration serves every dimension: warming the cache up
  // front makes the counts O(1) and lets the per-dimension boundary-rank
  // computations below read the tables concurrently. Each dimension is
  // independent and writes only its own slots, so the results are
  // bit-identical at every thread count.
  {
    obs::SpanTimer span("homology.warm_face_cache");
    k.warm_face_cache();
  }
  // Cooperative cancellation boundaries (serve deadlines): once before the
  // Morse cascade and once per dimension ahead of each elimination. With no
  // deadline active each poll is a single thread-local load.
  util::poll_deadline();
  if (options.morse) {
    // Morse preprocessing: the critical-cell complex has the same homology
    // (Betti and torsion) as the full one, with typically far fewer cells.
    // The cascade is serial and deterministic, so counts/boundaries — and
    // everything downstream — are identical at every thread count.
    MorseComplex mc = morse_reduce(k, options.max_dim + 1);
    for (std::size_t slot = 0; slot < counts.size(); ++slot) {
      counts[slot] = mc.critical[slot];
      boundaries[slot] = std::move(mc.boundary[slot]);
    }
  } else {
    for (int d = 0; d <= options.max_dim + 1; ++d) {
      counts[static_cast<std::size_t>(d)] = k.count_of_dim(d);
    }
  }
  util::parallel_for(counts.size(), [&](std::size_t slot) {
    if (counts[slot] == 0) {
      // No d-cells: the boundary map is zero from an empty space.
      if (!options.morse) boundaries[slot] = math::SparseMatrix(0, 0);
      ranks[slot] = 0;
      return;
    }
    util::poll_deadline();
    obs::SpanTimer span("homology.rank", static_cast<std::int64_t>(slot));
    g_obs_rank_dims.add(1);
    if (!options.morse) {
      boundaries[slot] = boundary_matrix(k, static_cast<int>(slot));
    }
    ranks[slot] = boundaries[slot].rank_mod_p(options.prime);
  });

  for (int d = 0; d <= options.max_dim; ++d) {
    const std::size_t slot = static_cast<std::size_t>(d);
    const long long betti = static_cast<long long>(counts[slot]) -
                            static_cast<long long>(ranks[slot]) -
                            static_cast<long long>(ranks[slot + 1]);
    report.reduced_betti[slot] = betti;
  }

  if (options.exact) {
    // The per-dimension SNF cross-checks are independent; run them on the
    // pool, then fold the results in serially so warnings and report slots
    // are filled in deterministic dimension order.
    std::vector<math::SmithResult> snfs(
        static_cast<std::size_t>(options.max_dim) + 1);
    util::parallel_for(snfs.size(), [&](std::size_t slot) {
      if (counts[slot + 1] == 0) return;
      util::poll_deadline();
      obs::SpanTimer span("homology.snf",
                          static_cast<std::int64_t>(slot + 1));
      g_obs_snf_dims.add(1);
      snfs[slot] = math::smith_normal_form(boundaries[slot + 1]);
    });
    for (int d = 0; d <= options.max_dim; ++d) {
      const std::size_t slot = static_cast<std::size_t>(d);
      if (counts[slot + 1] == 0) continue;
      const math::SmithResult& snf = snfs[slot];
      // Cross-check the GF(p) rank against the exact one.
      if (snf.rank() != ranks[slot + 1]) {
        PSPH_LOG(warn) << "GF(p) rank " << ranks[slot + 1]
                       << " disagrees with exact rank " << snf.rank()
                       << " for boundary dim " << d + 1
                       << "; correcting from SNF";
        const long long betti = static_cast<long long>(counts[slot]) -
                                static_cast<long long>(ranks[slot]) -
                                static_cast<long long>(snf.rank());
        report.reduced_betti[slot] = betti;
      }
      for (const math::BigInt& t : snf.torsion()) {
        report.torsion[slot].push_back(t.to_string());
      }
    }
  }
  return report;
}

int homological_connectivity(const SimplicialComplex& k, int up_to_dim,
                             const HomologyOptions& options) {
  if (k.empty()) return -2;
  HomologyOptions local = options;
  local.max_dim = std::max(up_to_dim, 0);
  const HomologyReport report = reduced_homology(k, local);
  int q = -1;
  for (int d = 0; d <= up_to_dim; ++d) {
    if (report.reduced_betti[static_cast<std::size_t>(d)] != 0) break;
    if (options.exact &&
        !report.torsion[static_cast<std::size_t>(d)].empty()) {
      break;
    }
    q = d;
  }
  return q;
}

bool is_homologically_connected(const SimplicialComplex& k, int q,
                                const HomologyOptions& options) {
  if (q <= -2) return true;
  if (q == -1) return !k.empty();
  return homological_connectivity(k, q, options) >= q;
}

std::string HomologyReport::to_string() const {
  std::ostringstream out;
  out << (nonempty ? "nonempty" : "EMPTY") << " betti~=[";
  for (std::size_t d = 0; d < reduced_betti.size(); ++d) {
    if (d > 0) out << ",";
    out << reduced_betti[d];
  }
  out << "]";
  if (exact) {
    out << " torsion=[";
    for (std::size_t d = 0; d < torsion.size(); ++d) {
      if (d > 0) out << ",";
      out << "{";
      for (std::size_t i = 0; i < torsion[d].size(); ++i) {
        if (i > 0) out << ",";
        out << torsion[d][i];
      }
      out << "}";
    }
    out << "]";
  }
  return out.str();
}

}  // namespace psph::topology
