#include "topology/mayer_vietoris.h"

#include <algorithm>

#include "topology/homology.h"
#include "topology/operations.h"

namespace psph::topology {

Theorem2Instance check_theorem2(const SimplicialComplex& a,
                                const SimplicialComplex& b, int k) {
  Theorem2Instance instance;
  instance.k = k;
  const int depth = std::max(k, 0);
  instance.connectivity_a = homological_connectivity(a, depth);
  instance.connectivity_b = homological_connectivity(b, depth);
  instance.connectivity_intersection =
      homological_connectivity(intersection_of(a, b), depth);
  instance.connectivity_union =
      homological_connectivity(union_of(a, b), depth);

  const auto at_least = [](int measured, int bound) {
    // measured is the largest verified level; -2 encodes the empty complex
    // (k-connected only for k < -1).
    return measured >= bound || bound < -1;
  };
  instance.hypothesis = at_least(instance.connectivity_a, k) &&
                        at_least(instance.connectivity_b, k) &&
                        instance.connectivity_intersection >= -1 &&
                        at_least(instance.connectivity_intersection, k - 1);
  instance.conclusion = at_least(instance.connectivity_union, k);
  return instance;
}

}  // namespace psph::topology
