#include "topology/complex.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace psph::topology {

SimplicialComplex::SimplicialComplex(const SimplicialComplex& other) {
  *this = other;
}

SimplicialComplex& SimplicialComplex::operator=(
    const SimplicialComplex& other) {
  if (this == &other) return *this;
  // Lock the source's cache so copying while another thread lazily builds
  // other's tables stays race-free; the destination mutex is fresh.
  std::lock_guard<std::mutex> lock(other.face_cache_mutex_);
  slots_ = other.slots_;
  live_count_ = other.live_count_;
  min_facet_dim_ = other.min_facet_dim_;
  max_facet_dim_ = other.max_facet_dim_;
  by_vertex_ = other.by_vertex_;
  facet_set_ = other.facet_set_;
  face_cache_ = other.face_cache_;
  face_cache_valid_.store(
      other.face_cache_valid_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  return *this;
}

SimplicialComplex::SimplicialComplex(SimplicialComplex&& other) noexcept {
  *this = std::move(other);
}

SimplicialComplex& SimplicialComplex::operator=(
    SimplicialComplex&& other) noexcept {
  if (this == &other) return *this;
  // Moving-from implies exclusive access to `other`; no lock needed.
  slots_ = std::move(other.slots_);
  live_count_ = other.live_count_;
  min_facet_dim_ = other.min_facet_dim_;
  max_facet_dim_ = other.max_facet_dim_;
  by_vertex_ = std::move(other.by_vertex_);
  facet_set_ = std::move(other.facet_set_);
  face_cache_ = std::move(other.face_cache_);
  face_cache_valid_.store(
      other.face_cache_valid_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  other.live_count_ = 0;
  other.min_facet_dim_ = std::numeric_limits<int>::max();
  other.max_facet_dim_ = -1;
  other.face_cache_valid_.store(false, std::memory_order_relaxed);
  return *this;
}

void SimplicialComplex::add_facet(Simplex s) {
  if (s.empty()) {
    throw std::invalid_argument("add_facet: empty simplex");
  }
  if (facet_set_.count(s) != 0) return;
  if (dominated(s)) return;
  invalidate_face_cache();

  // Remove facets *strictly* contained in s (equal-dimension facets cannot
  // be: a same-size subset is equality, which the hash check above already
  // excluded). Any strictly contained facet shares s's vertices, so
  // scanning the per-vertex slot lists of s's vertices — filtered to lower
  // dimension — finds them all. On pure complexes both scans are no-ops, so
  // bulk construction (pseudosphere products) is O(1) per facet.
  if (min_facet_dim_ < s.dimension()) {
    std::vector<std::size_t> candidates;
    for (VertexId v : s.vertices()) {
      const auto it = by_vertex_.find(v);
      if (it == by_vertex_.end()) continue;
      for (std::size_t slot : it->second) candidates.push_back(slot);
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    for (std::size_t slot : candidates) {
      const Simplex& facet = slots_[slot];
      if (facet.empty()) continue;  // tombstone
      if (facet.dimension() < s.dimension() && facet.is_face_of(s)) {
        facet_set_.erase(facet);
        slots_[slot] = Simplex();
        --live_count_;
      }
    }
  }

  const std::size_t slot = slots_.size();
  for (VertexId v : s.vertices()) by_vertex_[v].push_back(slot);
  min_facet_dim_ = std::min(min_facet_dim_, s.dimension());
  max_facet_dim_ = std::max(max_facet_dim_, s.dimension());
  facet_set_.insert(s);
  slots_.push_back(std::move(s));
  ++live_count_;
}

bool SimplicialComplex::dominated(const Simplex& s) const {
  // Only *strictly* larger facets can properly contain s (improper
  // containment, i.e. equality, is handled by the facet_set_ hash lookups
  // at the call sites). A facet containing s must contain s's first vertex.
  if (max_facet_dim_ <= s.dimension()) return false;
  const auto it = by_vertex_.find(s[0]);
  if (it == by_vertex_.end()) return false;
  for (std::size_t slot : it->second) {
    const Simplex& facet = slots_[slot];
    if (!facet.empty() && facet.dimension() > s.dimension() &&
        s.is_face_of(facet)) {
      return true;
    }
  }
  return false;
}

void SimplicialComplex::reserve(std::size_t additional) {
  slots_.reserve(slots_.size() + additional);
  facet_set_.reserve(facet_set_.size() + additional);
}

void SimplicialComplex::add_facets(std::vector<Simplex> facets) {
  if (facets.empty()) return;
  int batch_dim = facets[0].dimension();
  for (const Simplex& s : facets) {
    if (s.empty()) throw std::invalid_argument("add_facet: empty simplex");
    if (s.dimension() != batch_dim) batch_dim = -2;  // mixed batch
  }
  const bool complex_compatible =
      live_count_ == 0 ||
      (min_facet_dim_ == batch_dim && max_facet_dim_ == batch_dim);
  if (batch_dim < 0 || !complex_compatible) {
    // Mixed dimensions somewhere: domination is possible, take the scanning
    // path facet by facet.
    reserve(facets.size());
    for (Simplex& s : facets) add_facet(std::move(s));
    return;
  }
  // Pure fast lane: every live facet and every incoming facet has dimension
  // batch_dim, so no facet can strictly contain another — domination scans
  // are provably no-ops and only exact-duplicate detection remains.
  invalidate_face_cache();
  reserve(facets.size());
  for (Simplex& s : facets) {
    if (!facet_set_.insert(s).second) continue;  // exact duplicate
    const std::size_t slot = slots_.size();
    for (VertexId v : s.vertices()) by_vertex_[v].push_back(slot);
    slots_.push_back(std::move(s));
    ++live_count_;
  }
  min_facet_dim_ = batch_dim;
  max_facet_dim_ = batch_dim;
}

void SimplicialComplex::merge(const SimplicialComplex& other) {
  // Batch through add_facets so pure-into-pure merges (unions of equal-rank
  // pseudospheres) take the fast lane.
  std::vector<Simplex> batch;
  batch.reserve(other.live_count_);
  for (const Simplex& facet : other.slots_) {
    if (!facet.empty()) batch.push_back(facet);
  }
  add_facets(std::move(batch));
}

std::vector<Simplex> SimplicialComplex::facets() const {
  std::vector<Simplex> result;
  result.reserve(live_count_);
  for (const Simplex& facet : slots_) {
    if (!facet.empty()) result.push_back(facet);
  }
  std::sort(result.begin(), result.end());
  return result;
}

void SimplicialComplex::for_each_facet(
    const std::function<void(const Simplex&)>& fn) const {
  for (const Simplex& facet : slots_) {
    if (!facet.empty()) fn(facet);
  }
}

bool SimplicialComplex::contains(const Simplex& s) const {
  if (s.empty()) return !empty();
  return dominated(s) || facet_set_.count(s) != 0;
}

void SimplicialComplex::invalidate_face_cache() {
  // Mutators run with exclusive access (same contract as std containers),
  // so relaxed ordering suffices.
  face_cache_valid_.store(false, std::memory_order_relaxed);
  face_cache_.clear();
}

void SimplicialComplex::build_face_cache() const {
  face_cache_.clear();
  if (max_facet_dim_ < 0) return;
  // One pass over the live facets enumerates every face of every dimension;
  // the per-dimension hash sets deduplicate faces shared between facets.
  std::vector<std::unordered_set<Simplex, SimplexHash>> seen(
      static_cast<std::size_t>(max_facet_dim_) + 1);
  for (const Simplex& facet : slots_) {
    if (facet.empty()) continue;
    for (Simplex& face : facet.all_faces()) {
      seen[static_cast<std::size_t>(face.dimension())].insert(
          std::move(face));
    }
  }
  face_cache_.resize(seen.size());
  for (std::size_t d = 0; d < seen.size(); ++d) {
    FaceTable& table = face_cache_[d];
    table.faces.assign(seen[d].begin(), seen[d].end());
    std::sort(table.faces.begin(), table.faces.end());
    table.index.reserve(table.faces.size());
    for (std::size_t i = 0; i < table.faces.size(); ++i) {
      table.index.emplace(table.faces[i], i);
    }
  }
}

void SimplicialComplex::warm_face_cache() const {
  if (face_cache_valid_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(face_cache_mutex_);
  if (face_cache_valid_.load(std::memory_order_relaxed)) return;
  build_face_cache();
  face_cache_valid_.store(true, std::memory_order_release);
}

const SimplicialComplex::FaceTable* SimplicialComplex::face_table(
    int d) const {
  if (d < 0 || d > max_facet_dim_) return nullptr;
  warm_face_cache();
  return &face_cache_[static_cast<std::size_t>(d)];
}

const std::vector<Simplex>& SimplicialComplex::simplices_of_dim(int d) const {
  static const std::vector<Simplex> kNoFaces;
  const FaceTable* table = face_table(d);
  return table ? table->faces : kNoFaces;
}

const std::unordered_map<Simplex, std::size_t, SimplexHash>&
SimplicialComplex::face_index_of_dim(int d) const {
  static const std::unordered_map<Simplex, std::size_t, SimplexHash> kNoIndex;
  const FaceTable* table = face_table(d);
  return table ? table->index : kNoIndex;
}

std::size_t SimplicialComplex::count_of_dim(int d) const {
  return simplices_of_dim(d).size();
}

std::vector<VertexId> SimplicialComplex::vertex_ids() const {
  std::unordered_set<VertexId> seen;
  for (const Simplex& facet : slots_) {
    if (facet.empty()) continue;
    for (VertexId v : facet.vertices()) seen.insert(v);
  }
  std::vector<VertexId> result(seen.begin(), seen.end());
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<std::size_t> SimplicialComplex::f_vector() const {
  warm_face_cache();
  std::vector<std::size_t> result;
  result.reserve(face_cache_.size());
  for (const FaceTable& table : face_cache_) {
    result.push_back(table.faces.size());
  }
  return result;
}

long long SimplicialComplex::euler_characteristic() const {
  long long chi = 0;
  long long sign = 1;
  for (std::size_t count : f_vector()) {
    chi += sign * static_cast<long long>(count);
    sign = -sign;
  }
  return chi;
}

bool SimplicialComplex::is_pure() const {
  for (const Simplex& facet : slots_) {
    if (!facet.empty() && facet.dimension() != max_facet_dim_) return false;
  }
  return true;
}

bool SimplicialComplex::operator==(const SimplicialComplex& other) const {
  if (live_count_ != other.live_count_) return false;
  for (const Simplex& facet : slots_) {
    if (!facet.empty() && other.facet_set_.count(facet) == 0) return false;
  }
  return true;
}

bool SimplicialComplex::is_subcomplex_of(
    const SimplicialComplex& other) const {
  for (const Simplex& facet : slots_) {
    if (!facet.empty() && !other.contains(facet)) return false;
  }
  return true;
}

SimplicialComplex SimplicialComplex::apply_vertex_map(
    const std::function<VertexId(VertexId)>& map, bool allow_collapse) const {
  SimplicialComplex image;
  for (const Simplex& facet : slots_) {
    if (facet.empty()) continue;
    std::vector<VertexId> mapped;
    mapped.reserve(facet.size());
    for (VertexId v : facet.vertices()) mapped.push_back(map(v));
    std::sort(mapped.begin(), mapped.end());
    const auto dup = std::unique(mapped.begin(), mapped.end());
    if (dup != mapped.end()) {
      if (!allow_collapse) {
        throw std::invalid_argument(
            "apply_vertex_map: map collapses a simplex (pass "
            "allow_collapse=true if intended)");
      }
      mapped.erase(dup, mapped.end());
    }
    image.add_facet(Simplex(std::move(mapped)));
  }
  return image;
}

std::string SimplicialComplex::to_string() const {
  std::ostringstream out;
  out << "Complex(dim=" << dimension() << ", facets=" << live_count_ << ")[";
  bool first = true;
  for (const Simplex& facet : facets()) {
    if (!first) out << ", ";
    first = false;
    out << facet.to_string();
  }
  out << "]";
  return out.str();
}

}  // namespace psph::topology
