#include "topology/complex.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace psph::topology {

void SimplicialComplex::add_facet(Simplex s) {
  if (s.empty()) {
    throw std::invalid_argument("add_facet: empty simplex");
  }
  if (facet_set_.count(s) != 0) return;
  if (dominated(s)) return;

  // Remove facets *strictly* contained in s (equal-dimension facets cannot
  // be: a same-size subset is equality, which the hash check above already
  // excluded). Any strictly contained facet shares s's vertices, so
  // scanning the per-vertex slot lists of s's vertices — filtered to lower
  // dimension — finds them all. On pure complexes both scans are no-ops, so
  // bulk construction (pseudosphere products) is O(1) per facet.
  if (min_facet_dim_ < s.dimension()) {
    std::vector<std::size_t> candidates;
    for (VertexId v : s.vertices()) {
      const auto it = by_vertex_.find(v);
      if (it == by_vertex_.end()) continue;
      for (std::size_t slot : it->second) candidates.push_back(slot);
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    for (std::size_t slot : candidates) {
      const Simplex& facet = slots_[slot];
      if (facet.empty()) continue;  // tombstone
      if (facet.dimension() < s.dimension() && facet.is_face_of(s)) {
        facet_set_.erase(facet);
        slots_[slot] = Simplex();
        --live_count_;
      }
    }
  }

  const std::size_t slot = slots_.size();
  for (VertexId v : s.vertices()) by_vertex_[v].push_back(slot);
  min_facet_dim_ = std::min(min_facet_dim_, s.dimension());
  max_facet_dim_ = std::max(max_facet_dim_, s.dimension());
  facet_set_.insert(s);
  slots_.push_back(std::move(s));
  ++live_count_;
}

bool SimplicialComplex::dominated(const Simplex& s) const {
  // Only *strictly* larger facets can properly contain s (improper
  // containment, i.e. equality, is handled by the facet_set_ hash lookups
  // at the call sites). A facet containing s must contain s's first vertex.
  if (max_facet_dim_ <= s.dimension()) return false;
  const auto it = by_vertex_.find(s[0]);
  if (it == by_vertex_.end()) return false;
  for (std::size_t slot : it->second) {
    const Simplex& facet = slots_[slot];
    if (!facet.empty() && facet.dimension() > s.dimension() &&
        s.is_face_of(facet)) {
      return true;
    }
  }
  return false;
}

void SimplicialComplex::merge(const SimplicialComplex& other) {
  other.for_each_facet([this](const Simplex& s) { add_facet(s); });
}

int SimplicialComplex::dimension() const {
  int best = -1;
  for (const Simplex& facet : slots_) {
    if (!facet.empty()) best = std::max(best, facet.dimension());
  }
  return best;
}

std::vector<Simplex> SimplicialComplex::facets() const {
  std::vector<Simplex> result;
  result.reserve(live_count_);
  for (const Simplex& facet : slots_) {
    if (!facet.empty()) result.push_back(facet);
  }
  std::sort(result.begin(), result.end());
  return result;
}

void SimplicialComplex::for_each_facet(
    const std::function<void(const Simplex&)>& fn) const {
  for (const Simplex& facet : slots_) {
    if (!facet.empty()) fn(facet);
  }
}

bool SimplicialComplex::contains(const Simplex& s) const {
  if (s.empty()) return !empty();
  return dominated(s) || facet_set_.count(s) != 0;
}

std::vector<Simplex> SimplicialComplex::simplices_of_dim(int d) const {
  std::unordered_set<Simplex, SimplexHash> seen;
  for (const Simplex& facet : slots_) {
    if (facet.empty() || facet.dimension() < d) continue;
    for (Simplex& face : facet.faces_of_dim(d)) {
      seen.insert(std::move(face));
    }
  }
  std::vector<Simplex> result(seen.begin(), seen.end());
  std::sort(result.begin(), result.end());
  return result;
}

std::size_t SimplicialComplex::count_of_dim(int d) const {
  std::unordered_set<Simplex, SimplexHash> seen;
  for (const Simplex& facet : slots_) {
    if (facet.empty() || facet.dimension() < d) continue;
    for (Simplex& face : facet.faces_of_dim(d)) {
      seen.insert(std::move(face));
    }
  }
  return seen.size();
}

std::vector<VertexId> SimplicialComplex::vertex_ids() const {
  std::unordered_set<VertexId> seen;
  for (const Simplex& facet : slots_) {
    if (facet.empty()) continue;
    for (VertexId v : facet.vertices()) seen.insert(v);
  }
  std::vector<VertexId> result(seen.begin(), seen.end());
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<std::size_t> SimplicialComplex::f_vector() const {
  const int dim = dimension();
  std::vector<std::size_t> result;
  for (int d = 0; d <= dim; ++d) result.push_back(count_of_dim(d));
  return result;
}

long long SimplicialComplex::euler_characteristic() const {
  long long chi = 0;
  long long sign = 1;
  for (std::size_t count : f_vector()) {
    chi += sign * static_cast<long long>(count);
    sign = -sign;
  }
  return chi;
}

bool SimplicialComplex::is_pure() const {
  const int dim = dimension();
  for (const Simplex& facet : slots_) {
    if (!facet.empty() && facet.dimension() != dim) return false;
  }
  return true;
}

bool SimplicialComplex::operator==(const SimplicialComplex& other) const {
  if (live_count_ != other.live_count_) return false;
  for (const Simplex& facet : slots_) {
    if (!facet.empty() && other.facet_set_.count(facet) == 0) return false;
  }
  return true;
}

bool SimplicialComplex::is_subcomplex_of(
    const SimplicialComplex& other) const {
  for (const Simplex& facet : slots_) {
    if (!facet.empty() && !other.contains(facet)) return false;
  }
  return true;
}

SimplicialComplex SimplicialComplex::apply_vertex_map(
    const std::function<VertexId(VertexId)>& map, bool allow_collapse) const {
  SimplicialComplex image;
  for (const Simplex& facet : slots_) {
    if (facet.empty()) continue;
    std::vector<VertexId> mapped;
    mapped.reserve(facet.size());
    for (VertexId v : facet.vertices()) mapped.push_back(map(v));
    std::sort(mapped.begin(), mapped.end());
    const auto dup = std::unique(mapped.begin(), mapped.end());
    if (dup != mapped.end()) {
      if (!allow_collapse) {
        throw std::invalid_argument(
            "apply_vertex_map: map collapses a simplex (pass "
            "allow_collapse=true if intended)");
      }
      mapped.erase(dup, mapped.end());
    }
    image.add_facet(Simplex(std::move(mapped)));
  }
  return image;
}

std::string SimplicialComplex::to_string() const {
  std::ostringstream out;
  out << "Complex(dim=" << dimension() << ", facets=" << live_count_ << ")[";
  bool first = true;
  for (const Simplex& facet : facets()) {
    if (!first) out << ", ";
    first = false;
    out << facet.to_string();
  }
  out << "]";
  return out.str();
}

}  // namespace psph::topology
