#include "topology/complex.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace psph::topology {

SimplicialComplex::SimplicialComplex(const SimplicialComplex& other) {
  *this = other;
}

SimplicialComplex& SimplicialComplex::operator=(
    const SimplicialComplex& other) {
  if (this == &other) return *this;
  // Lock the source's cache so copying while another thread lazily builds
  // other's tables stays race-free; the destination mutex is fresh.
  std::lock_guard<std::mutex> lock(other.face_cache_mutex_);
  slots_ = other.slots_;
  live_count_ = other.live_count_;
  min_facet_dim_ = other.min_facet_dim_;
  max_facet_dim_ = other.max_facet_dim_;
  by_vertex_ = other.by_vertex_;
  facet_set_ = other.facet_set_;
  face_cache_ = other.face_cache_;
  face_cache_valid_.store(
      other.face_cache_valid_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  return *this;
}

SimplicialComplex::SimplicialComplex(SimplicialComplex&& other) noexcept {
  *this = std::move(other);
}

SimplicialComplex& SimplicialComplex::operator=(
    SimplicialComplex&& other) noexcept {
  if (this == &other) return *this;
  // Moving-from implies exclusive access to `other`; no lock needed.
  slots_ = std::move(other.slots_);
  live_count_ = other.live_count_;
  min_facet_dim_ = other.min_facet_dim_;
  max_facet_dim_ = other.max_facet_dim_;
  by_vertex_ = std::move(other.by_vertex_);
  facet_set_ = std::move(other.facet_set_);
  face_cache_ = std::move(other.face_cache_);
  face_cache_valid_.store(
      other.face_cache_valid_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  other.live_count_ = 0;
  other.min_facet_dim_ = std::numeric_limits<int>::max();
  other.max_facet_dim_ = -1;
  other.face_cache_valid_.store(false, std::memory_order_relaxed);
  return *this;
}

void SimplicialComplex::add_facet(Simplex s) {
  if (s.empty()) {
    throw std::invalid_argument("add_facet: empty simplex");
  }
  if (facet_set_.count(s) != 0) return;
  if (dominated(s)) return;
  invalidate_face_cache();

  // Remove facets *strictly* contained in s (equal-dimension facets cannot
  // be: a same-size subset is equality, which the hash check above already
  // excluded). Any strictly contained facet shares s's vertices, so
  // scanning the per-vertex slot lists of s's vertices — filtered to lower
  // dimension — finds them all. On pure complexes both scans are no-ops, so
  // bulk construction (pseudosphere products) is O(1) per facet.
  if (min_facet_dim_ < s.dimension()) {
    std::vector<std::size_t> candidates;
    for (VertexId v : s.vertices()) {
      const auto it = by_vertex_.find(v);
      if (it == by_vertex_.end()) continue;
      for (std::size_t slot : it->second) candidates.push_back(slot);
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    for (std::size_t slot : candidates) {
      const Simplex& facet = slots_[slot];
      if (facet.empty()) continue;  // tombstone
      if (facet.dimension() < s.dimension() && facet.is_face_of(s)) {
        facet_set_.erase(facet);
        slots_[slot] = Simplex();
        --live_count_;
      }
    }
  }

  const std::size_t slot = slots_.size();
  for (VertexId v : s.vertices()) by_vertex_[v].push_back(slot);
  min_facet_dim_ = std::min(min_facet_dim_, s.dimension());
  max_facet_dim_ = std::max(max_facet_dim_, s.dimension());
  facet_set_.insert(s);
  slots_.push_back(std::move(s));
  ++live_count_;
}

bool SimplicialComplex::dominated(const Simplex& s) const {
  // Only *strictly* larger facets can properly contain s (improper
  // containment, i.e. equality, is handled by the facet_set_ hash lookups
  // at the call sites). A facet containing s must contain s's first vertex.
  if (max_facet_dim_ <= s.dimension()) return false;
  const auto it = by_vertex_.find(s[0]);
  if (it == by_vertex_.end()) return false;
  for (std::size_t slot : it->second) {
    const Simplex& facet = slots_[slot];
    if (!facet.empty() && facet.dimension() > s.dimension() &&
        s.is_face_of(facet)) {
      return true;
    }
  }
  return false;
}

void SimplicialComplex::reserve(std::size_t additional) {
  slots_.reserve(slots_.size() + additional);
  facet_set_.reserve(facet_set_.size() + additional);
}

void SimplicialComplex::add_facets(std::vector<Simplex> facets) {
  if (facets.empty()) return;
  int batch_dim = facets[0].dimension();
  for (const Simplex& s : facets) {
    if (s.empty()) throw std::invalid_argument("add_facet: empty simplex");
    if (s.dimension() != batch_dim) batch_dim = -2;  // mixed batch
  }
  const bool complex_compatible =
      live_count_ == 0 ||
      (min_facet_dim_ == batch_dim && max_facet_dim_ == batch_dim);
  if (batch_dim < 0 || !complex_compatible) {
    // Mixed dimensions somewhere: domination is possible, take the scanning
    // path facet by facet.
    reserve(facets.size());
    for (Simplex& s : facets) add_facet(std::move(s));
    return;
  }
  // Pure fast lane: every live facet and every incoming facet has dimension
  // batch_dim, so no facet can strictly contain another — domination scans
  // are provably no-ops and only exact-duplicate detection remains.
  invalidate_face_cache();
  reserve(facets.size());
  for (Simplex& s : facets) {
    if (!facet_set_.insert(s).second) continue;  // exact duplicate
    const std::size_t slot = slots_.size();
    for (VertexId v : s.vertices()) by_vertex_[v].push_back(slot);
    slots_.push_back(std::move(s));
    ++live_count_;
  }
  min_facet_dim_ = batch_dim;
  max_facet_dim_ = batch_dim;
}

void SimplicialComplex::merge(const SimplicialComplex& other) {
  // Batch through add_facets so pure-into-pure merges (unions of equal-rank
  // pseudospheres) take the fast lane.
  std::vector<Simplex> batch;
  batch.reserve(other.live_count_);
  for (const Simplex& facet : other.slots_) {
    if (!facet.empty()) batch.push_back(facet);
  }
  add_facets(std::move(batch));
}

std::vector<Simplex> SimplicialComplex::facets() const {
  std::vector<Simplex> result;
  result.reserve(live_count_);
  for (const Simplex& facet : slots_) {
    if (!facet.empty()) result.push_back(facet);
  }
  std::sort(result.begin(), result.end());
  return result;
}

void SimplicialComplex::for_each_facet(
    const std::function<void(const Simplex&)>& fn) const {
  for (const Simplex& facet : slots_) {
    if (!facet.empty()) fn(facet);
  }
}

bool SimplicialComplex::contains(const Simplex& s) const {
  if (s.empty()) return !empty();
  return dominated(s) || facet_set_.count(s) != 0;
}

void SimplicialComplex::invalidate_face_cache() {
  // Mutators run with exclusive access (same contract as std containers),
  // so relaxed ordering suffices.
  face_cache_valid_.store(false, std::memory_order_relaxed);
  face_cache_.clear();
}

void SimplicialComplex::build_face_cache() const {
  face_cache_.clear();
  if (max_facet_dim_ < 0) return;
  face_cache_.resize(static_cast<std::size_t>(max_facet_dim_) + 1);

  // Top-down level enumeration: the d-simplexes are exactly the facets of
  // dimension d plus the codim-1 faces of the (d+1)-simplexes, so each face
  // is generated from the level above instead of re-enumerating the full
  // 2^k subset lattice of every facet. Each level's dedup map doubles as
  // its final index, and the codim-1 lookups that dedup level d are
  // recorded as boundary links for level d+1 — the boundary operator comes
  // out of the same hashing that builds the cache. Probes go through the
  // transparent hash with a reused scratch buffer, so only first sightings
  // of a face allocate.
  std::vector<std::vector<const Simplex*>> facets_by_dim(
      static_cast<std::size_t>(max_facet_dim_) + 1);
  for (const Simplex& facet : slots_) {
    if (facet.empty()) continue;
    facets_by_dim[static_cast<std::size_t>(facet.dimension())].push_back(
        &facet);
  }

  // Per-level dedup runs on a local open-addressing table (stored hash +
  // pool id, linear probing) instead of the public unordered_map index: no
  // node allocation and no Simplex copy per unique face, which matters
  // because this build sits on the homology hot path. The public per-level
  // index map is materialized lazily in face_index_of_dim, which only
  // diagnostics and tests call.
  const SimplexHash hasher;
  std::vector<std::uint64_t> slot_hash;
  std::vector<std::uint32_t> slot_id;  // pool id + 1; 0 = empty
  std::vector<VertexId> scratch;
  for (int d = max_facet_dim_; d >= 0; --d) {
    FaceTable& table = face_cache_[static_cast<std::size_t>(d)];
    std::vector<Simplex> pool;  // insertion order, re-sorted below
    // Each (d+1)-simplex contributes d+2 codim-1 probes and interior faces
    // are shared by ≥2 cofaces, so half the probe count (plus this level's
    // facets) bounds the live entries closely enough in practice.
    const std::size_t above_count =
        d < max_facet_dim_
            ? face_cache_[static_cast<std::size_t>(d) + 1].faces.size()
            : 0;
    const std::size_t estimate =
        facets_by_dim[static_cast<std::size_t>(d)].size() +
        above_count * (static_cast<std::size_t>(d) + 2) / 2 + 1;
    pool.reserve(estimate);
    std::size_t cap = 16;
    while (cap < estimate * 2) cap <<= 1;
    slot_hash.assign(cap, 0);
    slot_id.assign(cap, 0);
    const auto grow = [&]() {
      const std::size_t bigger = cap * 2;
      std::vector<std::uint64_t> old_hash(bigger, 0);
      std::vector<std::uint32_t> old_id(bigger, 0);
      old_hash.swap(slot_hash);
      old_id.swap(slot_id);
      for (std::size_t s = 0; s < cap; ++s) {
        if (old_id[s] == 0) continue;
        std::size_t at = old_hash[s] & (bigger - 1);
        while (slot_id[at] != 0) at = (at + 1) & (bigger - 1);
        slot_hash[at] = old_hash[s];
        slot_id[at] = old_id[s];
      }
      cap = bigger;
    };
    // Returns the pool id for `key`, appending a new Simplex on first
    // sighting. `h` is the key's SimplexHash value.
    const auto intern = [&](const std::vector<VertexId>& key,
                            std::uint64_t h) {
      std::size_t at = h & (cap - 1);
      while (slot_id[at] != 0) {
        if (slot_hash[at] == h &&
            pool[slot_id[at] - 1].vertices() == key) {
          return static_cast<std::size_t>(slot_id[at] - 1);
        }
        at = (at + 1) & (cap - 1);
      }
      const std::size_t id = pool.size();
      pool.emplace_back(key);
      slot_hash[at] = h;
      slot_id[at] = static_cast<std::uint32_t>(id + 1);
      if ((pool.size() + 1) * 4 > cap * 3) grow();
      return id;
    };
    // Facets of dimension d first. Maximality makes them distinct from
    // every face generated from the level above (a facet that appeared
    // there would be a face of another facet), but they still seed the
    // table so probes from above dedup against them.
    for (const Simplex* facet : facets_by_dim[static_cast<std::size_t>(d)]) {
      intern(facet->vertices(), hasher(facet->vertices()));
    }
    FaceTable* above = d < max_facet_dim_
                           ? &face_cache_[static_cast<std::size_t>(d) + 1]
                           : nullptr;
    if (above != nullptr) {
      above->boundary_links.reserve(above->faces.size() *
                                    (static_cast<std::size_t>(d) + 2));
      for (const Simplex& face : above->faces) {
        const std::vector<VertexId>& vs = face.vertices();
        for (std::size_t omit = 0; omit < vs.size(); ++omit) {
          scratch.clear();
          for (std::size_t i = 0; i < vs.size(); ++i) {
            if (i != omit) scratch.push_back(vs[i]);
          }
          above->boundary_links.push_back(intern(scratch, hasher(scratch)));
        }
      }
    }
    // Re-rank this level into sorted order; fix the links recorded for the
    // level above in place.
    const std::size_t n = pool.size();
    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; ++i) perm[i] = i;
    std::sort(perm.begin(), perm.end(),
              [&pool](std::size_t a, std::size_t b) {
                return pool[a] < pool[b];
              });
    std::vector<std::size_t> sorted_rank(n);
    for (std::size_t i = 0; i < n; ++i) sorted_rank[perm[i]] = i;
    table.faces.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      table.faces[i] = std::move(pool[perm[i]]);
    }
    if (above != nullptr) {
      for (std::size_t& link : above->boundary_links) {
        link = sorted_rank[link];
      }
    }
  }
}

void SimplicialComplex::warm_face_cache() const {
  if (face_cache_valid_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(face_cache_mutex_);
  if (face_cache_valid_.load(std::memory_order_relaxed)) return;
  build_face_cache();
  face_cache_valid_.store(true, std::memory_order_release);
}

const SimplicialComplex::FaceTable* SimplicialComplex::face_table(
    int d) const {
  if (d < 0 || d > max_facet_dim_) return nullptr;
  warm_face_cache();
  return &face_cache_[static_cast<std::size_t>(d)];
}

const std::vector<Simplex>& SimplicialComplex::simplices_of_dim(int d) const {
  static const std::vector<Simplex> kNoFaces;
  const FaceTable* table = face_table(d);
  return table ? table->faces : kNoFaces;
}

const std::unordered_map<Simplex, std::size_t, SimplexHash, SimplexEq>&
SimplicialComplex::face_index_of_dim(int d) const {
  static const std::unordered_map<Simplex, std::size_t, SimplexHash,
                                  SimplexEq>
      kNoIndex;
  if (face_table(d) == nullptr) return kNoIndex;
  // The index map is not needed by the homology engine, so the cache build
  // skips it; materialize it on first request (diagnostics and tests).
  std::lock_guard<std::mutex> lock(face_cache_mutex_);
  FaceTable& table = face_cache_[static_cast<std::size_t>(d)];
  if (table.index.empty() && !table.faces.empty()) {
    table.index.reserve(table.faces.size());
    for (std::size_t i = 0; i < table.faces.size(); ++i) {
      table.index.emplace(table.faces[i], i);
    }
  }
  return table.index;
}

const std::vector<std::size_t>& SimplicialComplex::boundary_links_of_dim(
    int d) const {
  static const std::vector<std::size_t> kNoLinks;
  if (d < 1) return kNoLinks;
  const FaceTable* table = face_table(d);
  return table ? table->boundary_links : kNoLinks;
}

std::size_t SimplicialComplex::count_of_dim(int d) const {
  return simplices_of_dim(d).size();
}

std::vector<VertexId> SimplicialComplex::vertex_ids() const {
  std::unordered_set<VertexId> seen;
  for (const Simplex& facet : slots_) {
    if (facet.empty()) continue;
    for (VertexId v : facet.vertices()) seen.insert(v);
  }
  std::vector<VertexId> result(seen.begin(), seen.end());
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<std::size_t> SimplicialComplex::f_vector() const {
  warm_face_cache();
  std::vector<std::size_t> result;
  result.reserve(face_cache_.size());
  for (const FaceTable& table : face_cache_) {
    result.push_back(table.faces.size());
  }
  return result;
}

long long SimplicialComplex::euler_characteristic() const {
  long long chi = 0;
  long long sign = 1;
  for (std::size_t count : f_vector()) {
    chi += sign * static_cast<long long>(count);
    sign = -sign;
  }
  return chi;
}

bool SimplicialComplex::is_pure() const {
  for (const Simplex& facet : slots_) {
    if (!facet.empty() && facet.dimension() != max_facet_dim_) return false;
  }
  return true;
}

bool SimplicialComplex::operator==(const SimplicialComplex& other) const {
  if (live_count_ != other.live_count_) return false;
  for (const Simplex& facet : slots_) {
    if (!facet.empty() && other.facet_set_.count(facet) == 0) return false;
  }
  return true;
}

bool SimplicialComplex::is_subcomplex_of(
    const SimplicialComplex& other) const {
  for (const Simplex& facet : slots_) {
    if (!facet.empty() && !other.contains(facet)) return false;
  }
  return true;
}

SimplicialComplex SimplicialComplex::apply_vertex_map(
    const std::function<VertexId(VertexId)>& map, bool allow_collapse) const {
  SimplicialComplex image;
  for (const Simplex& facet : slots_) {
    if (facet.empty()) continue;
    std::vector<VertexId> mapped;
    mapped.reserve(facet.size());
    for (VertexId v : facet.vertices()) mapped.push_back(map(v));
    std::sort(mapped.begin(), mapped.end());
    const auto dup = std::unique(mapped.begin(), mapped.end());
    if (dup != mapped.end()) {
      if (!allow_collapse) {
        throw std::invalid_argument(
            "apply_vertex_map: map collapses a simplex (pass "
            "allow_collapse=true if intended)");
      }
      mapped.erase(dup, mapped.end());
    }
    image.add_facet(Simplex(std::move(mapped)));
  }
  return image;
}

std::string SimplicialComplex::to_string() const {
  std::ostringstream out;
  out << "Complex(dim=" << dimension() << ", facets=" << live_count_ << ")[";
  bool first = true;
  for (const Simplex& facet : facets()) {
    if (!first) out << ", ";
    first = false;
    out << facet.to_string();
  }
  out << "]";
  return out.str();
}

}  // namespace psph::topology
