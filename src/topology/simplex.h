#pragma once

// A simplex is a finite set of vertices (Section 3 of the paper). We store
// the vertex ids sorted and unique; the sorted order doubles as the
// orientation convention for boundary operators.

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "topology/types.h"
#include "util/hash.h"

namespace psph::topology {

class Simplex {
 public:
  /// The empty simplex (dimension -1).
  Simplex() = default;

  /// Builds a simplex from vertices; sorts them and rejects duplicates.
  explicit Simplex(std::vector<VertexId> vertices);
  Simplex(std::initializer_list<VertexId> vertices);

  /// Number of vertices minus one; the empty simplex has dimension -1.
  int dimension() const { return static_cast<int>(vertices_.size()) - 1; }

  std::size_t size() const { return vertices_.size(); }
  bool empty() const { return vertices_.empty(); }

  const std::vector<VertexId>& vertices() const { return vertices_; }
  VertexId operator[](std::size_t index) const { return vertices_[index]; }

  bool contains(VertexId v) const;

  /// True if every vertex of *this appears in `other` (⊆, faces included
  /// improperly: a simplex is a face of itself).
  bool is_face_of(const Simplex& other) const;

  /// The face omitting the vertex at `index` (paper notation: circumflex).
  Simplex face_without_index(std::size_t index) const;

  /// The face omitting vertex `v`; *this if v is not present.
  Simplex without_vertex(VertexId v) const;

  /// The face spanned by the vertices of *this that are also in `other`.
  Simplex intersect(const Simplex& other) const;

  /// The simplex spanned by the union of vertex sets.
  Simplex unite(const Simplex& other) const;

  /// All faces of the given dimension (d+1 choose k+1 of them).
  std::vector<Simplex> faces_of_dim(int d) const;

  /// All proper and improper faces, excluding the empty simplex, ordered by
  /// dimension then lexicographically.
  std::vector<Simplex> all_faces() const;

  bool operator==(const Simplex& other) const {
    return vertices_ == other.vertices_;
  }
  bool operator!=(const Simplex& other) const { return !(*this == other); }
  /// Lexicographic-by-vertex order (shorter prefixes first); used for
  /// deterministic iteration.
  bool operator<(const Simplex& other) const {
    return vertices_ < other.vertices_;
  }

  std::string to_string() const;

 private:
  std::vector<VertexId> vertices_;
};

struct SimplexHash {
  using is_transparent = void;
  std::size_t operator()(const Simplex& s) const {
    return util::hash_range(s.vertices());
  }
  /// Heterogeneous form: a sorted vertex list hashes like the Simplex it
  /// would construct, so face tables can probe with a scratch buffer
  /// instead of allocating a key per lookup.
  std::size_t operator()(const std::vector<VertexId>& vertices) const {
    return util::hash_range(vertices);
  }
};

/// Transparent equality matching SimplexHash's heterogeneous contract.
struct SimplexEq {
  using is_transparent = void;
  bool operator()(const Simplex& a, const Simplex& b) const { return a == b; }
  bool operator()(const Simplex& a, const std::vector<VertexId>& b) const {
    return a.vertices() == b;
  }
  bool operator()(const std::vector<VertexId>& a, const Simplex& b) const {
    return a == b.vertices();
  }
};

}  // namespace psph::topology
