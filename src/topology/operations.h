#pragma once

// Standard constructions on simplicial complexes: union, intersection,
// star, link, skeleton, join, induced subcomplex. Theorem 2 (Mayer-Vietoris)
// reasons about K ∪ L via K, L and K ∩ L; these are the operations the
// paper's proofs manipulate, so the library exposes them directly.

#include <vector>

#include "topology/complex.h"

namespace psph::topology {

/// K ∪ L: facets of both, maximality maintained.
SimplicialComplex union_of(const SimplicialComplex& a,
                           const SimplicialComplex& b);

/// Union of any number of complexes.
SimplicialComplex union_of(const std::vector<SimplicialComplex>& parts);

/// K ∩ L: all simplexes that are faces of both. Computed as the maximal
/// elements of pairwise facet intersections.
SimplicialComplex intersection_of(const SimplicialComplex& a,
                                  const SimplicialComplex& b);

/// star(σ, K): all facets of K containing σ (closure thereof).
SimplicialComplex star(const SimplicialComplex& k, const Simplex& s);

/// link(σ, K): { τ ∈ K : τ ∩ σ = ∅ and τ ∪ σ ∈ K }.
SimplicialComplex link(const SimplicialComplex& k, const Simplex& s);

/// d-skeleton: all simplexes of dimension ≤ d.
SimplicialComplex skeleton(const SimplicialComplex& k, int d);

/// Join K * L. Vertex sets must be disjoint; facets are σ ∪ τ.
SimplicialComplex join(const SimplicialComplex& a, const SimplicialComplex& b);

/// Induced subcomplex on a vertex subset: faces of facets restricted to the
/// subset (maximal restrictions kept).
SimplicialComplex induced(const SimplicialComplex& k,
                          const std::vector<VertexId>& keep);

/// The complex consisting of a single simplex and all its faces.
SimplicialComplex from_simplex(const Simplex& s);

/// The full boundary of a simplex: all proper faces (a combinatorial
/// (d-1)-sphere when s has dimension d).
SimplicialComplex boundary_complex(const Simplex& s);

}  // namespace psph::topology
