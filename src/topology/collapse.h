#pragma once

// Elementary-collapse engine.
//
// A free face σ is a simplex with exactly one proper coface τ (necessarily
// of dimension dim σ + 1); removing the pair (σ, τ) is an elementary
// collapse and preserves homotopy type. A complex that collapses to a single
// vertex is contractible, hence k-connected for every k — a certificate
// strictly stronger than the homological proxy in homology.h. Greedy
// collapsing is not complete (some contractible complexes are not
// collapsible, and greedy order matters), so a `false` result is
// inconclusive; experiments treat it as "fall back to homology".

#include <cstddef>

#include "topology/complex.h"

namespace psph::topology {

struct CollapseResult {
  /// True if greedy collapsing reached a single vertex.
  bool collapsed_to_point = false;
  /// Number of elementary collapse steps performed.
  std::size_t steps = 0;
  /// Simplexes remaining when no free face was left.
  std::size_t remaining_faces = 0;
};

/// Greedily collapses the complex (highest-dimensional free faces first).
/// Runs on the full face poset; exponential in facet dimension, intended
/// for the instance sizes of the experiments.
CollapseResult collapse_greedily(const SimplicialComplex& k);

/// Convenience wrapper: true iff greedy collapsing certifies contractibility.
bool collapses_to_point(const SimplicialComplex& k);

}  // namespace psph::topology
