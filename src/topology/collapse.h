#pragma once

// Elementary-collapse engine.
//
// A free face σ is a simplex with exactly one proper coface τ (necessarily
// of dimension dim σ + 1); removing the pair (σ, τ) is an elementary
// collapse and preserves homotopy type. A complex that collapses to a single
// vertex is contractible, hence k-connected for every k — a certificate
// strictly stronger than the homological proxy in homology.h. Greedy
// collapsing is not complete (some contractible complexes are not
// collapsible, and greedy order matters), so a `false` result is
// inconclusive; experiments treat it as "fall back to homology".

#include <cstddef>
#include <vector>

#include "math/matrix.h"
#include "topology/complex.h"

namespace psph::topology {

struct CollapseResult {
  /// True if greedy collapsing reached a single vertex.
  bool collapsed_to_point = false;
  /// Number of elementary collapse steps performed.
  std::size_t steps = 0;
  /// Simplexes remaining when no free face was left.
  std::size_t remaining_faces = 0;
};

/// Greedily collapses the complex (highest-dimensional free faces first).
/// Runs on the full face poset; exponential in facet dimension, intended
/// for the instance sizes of the experiments.
CollapseResult collapse_greedily(const SimplicialComplex& k);

/// Convenience wrapper: true iff greedy collapsing certifies contractibility.
bool collapses_to_point(const SimplicialComplex& k);

// ------------------------------------------------------- Morse reduction --
//
// Matrix-shrinking preprocessor for the homology engine. The augmented
// chain complex ... → C_1 → C_0 → Z → 0 is reduced by repeatedly removing
// *reduction pairs*: a (d-1)-cell with exactly one live coface (a free
// face) or a d-cell with exactly one live face in its boundary (a
// coreduction pair, Mrozek–Batko style). Either way the incidence
// coefficient is ±1 and the pair removal is a pure deletion — no other
// matrix entry changes value — so the surviving ("critical") cells carry
// boundary matrices whose entries are still ±1 and whose homology (Betti
// numbers AND torsion) is identical to the input complex's: each step is an
// elementary chain-complex reduction, a chain homotopy equivalence over Z.
//
// The augmentation cell participates: the first coreduction pairs away the
// augmentation against a vertex, which is what lets the cascade eat a
// connected complex almost entirely (Kozlov's standard protocol complexes
// carry large collapsible substructure, so the typical shrink here is one
// to two orders of magnitude before any elimination runs).

struct MorseComplex {
  /// critical[d] = number of critical d-cells, d = 0..top_dim.
  std::vector<std::size_t> critical;
  /// boundary[d] = reduced ∂_d over the critical cells (rows = critical
  /// (d-1)-cells, cols = critical d-cells), d = 0..top_dim. boundary[0] is
  /// the surviving augmentation map (0 or 1 rows).
  std::vector<math::SparseMatrix> boundary;
  /// Reduction pairs removed (each deletes two cells).
  std::size_t pairs = 0;
  /// Cells in play before/after, counting the augmentation cell.
  std::size_t cells_before = 0;
  std::size_t cells_after = 0;
};

/// Reduces the augmented chain complex of `k` truncated at dimension
/// `top_dim` (cells of higher dimension are ignored, which leaves homology
/// in dimensions < top_dim untouched — exactly the slice reduced_homology
/// reads when called with max_dim = top_dim - 1). Deterministic: a serial
/// cascade in a fixed seed order, independent of thread count.
MorseComplex morse_reduce(const SimplicialComplex& k, int top_dim);

}  // namespace psph::topology
