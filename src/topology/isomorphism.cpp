#include "topology/isomorphism.h"

#include <algorithm>
#include <unordered_set>

namespace psph::topology {

bool is_isomorphism(const SimplicialComplex& a, const SimplicialComplex& b,
                    const VertexMap& map) {
  const std::vector<VertexId> vertices_a = a.vertex_ids();
  // Defined everywhere and injective.
  std::unordered_set<VertexId> image;
  for (VertexId v : vertices_a) {
    const auto it = map.find(v);
    if (it == map.end()) return false;
    if (!image.insert(it->second).second) return false;
  }
  if (image.size() != b.vertex_ids().size()) return false;

  if (a.facet_count() != b.facet_count()) return false;
  bool ok = true;
  a.for_each_facet([&](const Simplex& facet) {
    if (!ok) return;
    std::vector<VertexId> mapped;
    mapped.reserve(facet.size());
    for (VertexId v : facet.vertices()) mapped.push_back(map.at(v));
    Simplex image_facet{std::move(mapped)};
    // The image must itself be a facet of b (not merely contained): facets
    // must map onto facets for the inverse map to be simplicial too.
    bool is_facet = false;
    b.for_each_facet([&](const Simplex& g) {
      if (g == image_facet) is_facet = true;
    });
    if (!is_facet) ok = false;
  });
  return ok;
}

bool is_automorphism(const SimplicialComplex& k, const VertexMap& map) {
  return is_isomorphism(k, k, map);
}

ComplexFingerprint fingerprint(const SimplicialComplex& k) {
  ComplexFingerprint fp;
  fp.f_vector = k.f_vector();
  std::unordered_map<VertexId, std::size_t> degree;
  k.for_each_facet([&](const Simplex& facet) {
    fp.facet_dimensions.push_back(facet.dimension());
    for (VertexId v : facet.vertices()) ++degree[v];
  });
  for (const auto& [v, d] : degree) fp.vertex_degrees.push_back(d);
  std::sort(fp.vertex_degrees.begin(), fp.vertex_degrees.end());
  std::sort(fp.facet_dimensions.begin(), fp.facet_dimensions.end());
  return fp;
}

namespace {

struct SearchState {
  std::vector<VertexId> vertices_a;
  std::vector<VertexId> vertices_b;
  const SimplicialComplex* a = nullptr;
  const SimplicialComplex* b = nullptr;
  VertexMap forward;
  std::unordered_set<VertexId> used_b;
};

// Checks the facets of `a` all map to facets of `b` under the (total)
// assignment in state.forward.
bool full_check(const SearchState& state) {
  bool ok = true;
  std::unordered_set<Simplex, SimplexHash> facets_b;
  state.b->for_each_facet(
      [&](const Simplex& g) { facets_b.insert(g); });
  state.a->for_each_facet([&](const Simplex& facet) {
    if (!ok) return;
    std::vector<VertexId> mapped;
    for (VertexId v : facet.vertices()) mapped.push_back(state.forward.at(v));
    if (facets_b.count(Simplex{std::move(mapped)}) == 0) ok = false;
  });
  return ok;
}

bool backtrack(SearchState& state, std::size_t index) {
  if (index == state.vertices_a.size()) return full_check(state);
  const VertexId v = state.vertices_a[index];
  for (VertexId candidate : state.vertices_b) {
    if (state.used_b.count(candidate) != 0) continue;
    state.forward[v] = candidate;
    state.used_b.insert(candidate);
    // Cheap local pruning: every fully mapped facet of `a` restricted to the
    // assigned vertices must be a simplex of `b`.
    bool feasible = true;
    state.a->for_each_facet([&](const Simplex& facet) {
      if (!feasible || !facet.contains(v)) return;
      std::vector<VertexId> mapped;
      for (VertexId u : facet.vertices()) {
        const auto it = state.forward.find(u);
        if (it != state.forward.end()) mapped.push_back(it->second);
      }
      if (!state.b->contains(Simplex{std::move(mapped)})) feasible = false;
    });
    if (feasible && backtrack(state, index + 1)) return true;
    state.used_b.erase(candidate);
    state.forward.erase(v);
  }
  return false;
}

}  // namespace

std::optional<VertexMap> find_isomorphism(const SimplicialComplex& a,
                                          const SimplicialComplex& b) {
  if (!(fingerprint(a) == fingerprint(b))) return std::nullopt;
  SearchState state;
  state.vertices_a = a.vertex_ids();
  state.vertices_b = b.vertex_ids();
  state.a = &a;
  state.b = &b;
  if (state.vertices_a.size() != state.vertices_b.size()) return std::nullopt;
  if (!backtrack(state, 0)) return std::nullopt;
  return state.forward;
}

}  // namespace psph::topology
