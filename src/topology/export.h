#pragma once

// Export complexes for external inspection and visualization:
//   * Graphviz DOT of the 1-skeleton (optionally labeled via a callback) —
//     good for the small figures (Figures 1-3 render directly);
//   * OFF (Object File Format) of the 2-skeleton with spring-free
//     deterministic coordinates (vertices on a circle / sphere shell), good
//     enough for quick mesh viewers;
//   * a plain-text facet listing, the canonical machine-readable dump.

#include <functional>
#include <string>

#include "topology/complex.h"

namespace psph::topology {

/// DOT rendering of the 1-skeleton. `label` maps a vertex to its display
/// string; pass nullptr for numeric ids.
std::string to_dot(const SimplicialComplex& k,
                   const std::function<std::string(VertexId)>& label = {});

/// OFF rendering of vertices, with the complex's triangles as faces.
/// Vertices are placed deterministically on a unit circle (dim <= some
/// small layout; coordinates carry no geometric meaning beyond viewing).
std::string to_off(const SimplicialComplex& k);

/// One facet per line, vertices space-separated, sorted — stable across
/// runs, suitable for golden files and diffing.
std::string to_facet_listing(const SimplicialComplex& k);

/// Parses a facet listing produced by to_facet_listing (or hand-written:
/// '#' comments and blank lines ignored). Throws on malformed input.
SimplicialComplex from_facet_listing(const std::string& text);

}  // namespace psph::topology
