#pragma once

// Shared identifier types for the topology and core libraries.
//
// Complexes are purely combinatorial objects over dense numeric VertexIds.
// What a vertex *means* — which process it belongs to and which local state
// it carries — lives in a VertexArena (arena.h), keeping the topology layer
// reusable for unlabeled complexes (e.g. barycentric subdivisions).

#include <cstdint>

namespace psph::topology {

/// Dense vertex identifier within one arena / complex family.
using VertexId = std::uint32_t;

/// Process identifier (paper: P_0 ... P_n).
using ProcessId = std::int32_t;

/// Interned local-state identifier (see core/view.h for protocol states).
using StateId = std::uint64_t;

inline constexpr VertexId kInvalidVertex = 0xffffffffU;

}  // namespace psph::topology
