#include "topology/collapse.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/obs.h"

namespace psph::topology {

namespace {

// Face-poset node bookkeeping for the greedy collapse.
struct Poset {
  std::vector<Simplex> faces;                      // index -> simplex
  std::unordered_map<Simplex, std::size_t, SimplexHash> index;
  std::vector<std::vector<std::size_t>> cofaces;   // codim-1 cofaces
  std::vector<std::vector<std::size_t>> subfaces;  // codim-1 faces
  std::vector<bool> alive;
  std::vector<std::size_t> live_coface_count;
};

Poset build_poset(const SimplicialComplex& k) {
  Poset poset;
  for (int d = 0; d <= k.dimension(); ++d) {
    for (const Simplex& s : k.simplices_of_dim(d)) {
      poset.index.emplace(s, poset.faces.size());
      poset.faces.push_back(s);
    }
  }
  const std::size_t n = poset.faces.size();
  poset.cofaces.assign(n, {});
  poset.subfaces.assign(n, {});
  poset.alive.assign(n, true);
  poset.live_coface_count.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const Simplex& s = poset.faces[i];
    if (s.dimension() == 0) continue;
    for (std::size_t omit = 0; omit < s.size(); ++omit) {
      const std::size_t sub = poset.index.at(s.face_without_index(omit));
      poset.cofaces[sub].push_back(i);
      poset.subfaces[i].push_back(sub);
      ++poset.live_coface_count[sub];
    }
  }
  return poset;
}

}  // namespace

CollapseResult collapse_greedily(const SimplicialComplex& k) {
  CollapseResult result;
  if (k.empty()) return result;

  Poset poset = build_poset(k);
  const std::size_t n = poset.faces.size();

  // Seed the work list with all current free faces (exactly one live
  // codim-1 coface; see header for why that implies a unique coface overall).
  std::vector<std::size_t> work;
  for (std::size_t i = 0; i < n; ++i) {
    if (poset.live_coface_count[i] == 1) work.push_back(i);
  }
  // Prefer collapsing high-dimensional pairs first: sort the seed list so
  // larger faces pop first (the work list is used as a stack).
  std::sort(work.begin(), work.end(), [&](std::size_t a, std::size_t b) {
    return poset.faces[a].dimension() < poset.faces[b].dimension();
  });

  std::size_t live = n;
  while (!work.empty()) {
    const std::size_t sigma = work.back();
    work.pop_back();
    if (!poset.alive[sigma] || poset.live_coface_count[sigma] != 1) continue;
    // Find the unique live coface tau.
    std::size_t tau = n;
    for (std::size_t candidate : poset.cofaces[sigma]) {
      if (poset.alive[candidate]) {
        tau = candidate;
        break;
      }
    }
    if (tau == n) continue;  // stale entry
    // tau must itself have no live cofaces (it must be a facet of the
    // current complex) for (sigma, tau) to be removable.
    if (poset.live_coface_count[tau] != 0) continue;

    poset.alive[sigma] = false;
    poset.alive[tau] = false;
    live -= 2;
    ++result.steps;

    // Removing tau decrements the coface counts of its codim-1 faces;
    // any that drop to one become new free-face candidates.
    for (std::size_t sub : poset.subfaces[tau]) {
      if (!poset.alive[sub]) continue;
      if (--poset.live_coface_count[sub] == 1) work.push_back(sub);
    }
    // Removing sigma likewise affects *its* subfaces.
    for (std::size_t sub : poset.subfaces[sigma]) {
      if (!poset.alive[sub]) continue;
      if (--poset.live_coface_count[sub] == 1) work.push_back(sub);
    }
  }

  result.remaining_faces = live;
  result.collapsed_to_point = (live == 1);
  return result;
}

bool collapses_to_point(const SimplicialComplex& k) {
  return collapse_greedily(k).collapsed_to_point;
}

// ------------------------------------------------------- Morse reduction --

namespace {

// Morse observability: one span per reduction, aggregate counters for the
// shrink the preprocessor achieves, and a per-call shrink-ratio gauge.
obs::Counter g_morse_pairs("morse.pairs");
obs::Counter g_morse_rows_before("morse.rows_before");
obs::Counter g_morse_rows_after("morse.rows_after");
obs::Counter g_morse_cols_before("morse.cols_before");
obs::Counter g_morse_cols_after("morse.cols_after");
obs::Gauge g_morse_shrink("morse.shrink_ratio");

// One boundary operator ∂_d of the augmented complex in the cell index
// space: columns are the d-cells (their rows come from the complex's
// boundary-link table; for d == 0 every column hits the single augmentation
// row), rows are the (d-1)-cells stored CSR-style with the ±1 incidence
// signs. Entries are never rewritten — the cascade only deletes cells — so
// liveness is tracked per cell and per-row/per-column live-entry counts.
struct MorseLevel {
  const std::size_t* links = nullptr;  // d >= 1: (d+1) row ids per column
  std::vector<std::uint32_t> row_ptr;
  std::vector<std::uint32_t> row_col;
  std::vector<std::int8_t> row_val;
  std::vector<std::uint32_t> row_live;
  std::vector<std::uint32_t> col_live;
};

}  // namespace

MorseComplex morse_reduce(const SimplicialComplex& k, int top_dim) {
  obs::SpanTimer span("morse.reduce", static_cast<std::int64_t>(top_dim));
  MorseComplex out;
  if (top_dim < 0) top_dim = 0;
  out.critical.assign(static_cast<std::size_t>(top_dim) + 1, 0);
  out.boundary.assign(static_cast<std::size_t>(top_dim) + 1,
                      math::SparseMatrix(0, 0));
  if (k.empty()) return out;

  // Cells of dimension -1..D, D the truncation depth; alive[t] holds the
  // (t-1)-cells, t == 0 being the single augmentation cell.
  const int D = std::min(top_dim, k.dimension());
  k.warm_face_cache();
  std::vector<std::size_t> counts(static_cast<std::size_t>(D) + 1);
  for (int d = 0; d <= D; ++d) {
    counts[static_cast<std::size_t>(d)] = k.count_of_dim(d);
  }
  std::vector<std::vector<char>> alive(static_cast<std::size_t>(D) + 2);
  alive[0].assign(1, 1);
  for (int d = 0; d <= D; ++d) {
    alive[static_cast<std::size_t>(d) + 1].assign(
        counts[static_cast<std::size_t>(d)], 1);
  }

  // Build ∂_0..∂_D: the column side reads the complex's boundary-link
  // table in place; the row side (needed to find a cell's cofaces) is a
  // counting-sort transpose. Iterating columns in ascending order leaves
  // every row's entries sorted by column, which the critical-matrix
  // emission below relies on.
  std::vector<MorseLevel> levels(static_cast<std::size_t>(D) + 1);
  {
    MorseLevel& aug = levels[0];
    const std::uint32_t n0 = static_cast<std::uint32_t>(counts[0]);
    aug.row_ptr = {0, n0};
    aug.row_col.resize(n0);
    aug.row_val.assign(n0, 1);
    for (std::uint32_t j = 0; j < n0; ++j) aug.row_col[j] = j;
    aug.row_live.assign(1, n0);
    aug.col_live.assign(n0, 1);
  }
  for (int d = 1; d <= D; ++d) {
    MorseLevel& level = levels[static_cast<std::size_t>(d)];
    const std::size_t rows = counts[static_cast<std::size_t>(d) - 1];
    const std::size_t cols = counts[static_cast<std::size_t>(d)];
    const std::size_t fanout = static_cast<std::size_t>(d) + 1;
    level.links = k.boundary_links_of_dim(d).data();
    level.row_ptr.assign(rows + 1, 0);
    for (std::size_t e = 0; e < cols * fanout; ++e) {
      ++level.row_ptr[level.links[e] + 1];
    }
    for (std::size_t r = 0; r < rows; ++r) {
      level.row_ptr[r + 1] += level.row_ptr[r];
    }
    level.row_col.resize(cols * fanout);
    level.row_val.resize(cols * fanout);
    std::vector<std::uint32_t> fill(level.row_ptr.begin(),
                                    level.row_ptr.end() - 1);
    for (std::size_t c = 0; c < cols; ++c) {
      std::int8_t sign = 1;
      for (std::size_t omit = 0; omit < fanout; ++omit) {
        const std::size_t r = level.links[c * fanout + omit];
        level.row_col[fill[r]] = static_cast<std::uint32_t>(c);
        level.row_val[fill[r]] = sign;
        ++fill[r];
        sign = -sign;
      }
    }
    level.row_live.assign(rows, 0);
    for (std::size_t r = 0; r < rows; ++r) {
      level.row_live[r] = level.row_ptr[r + 1] - level.row_ptr[r];
    }
    level.col_live.assign(cols, static_cast<std::uint32_t>(fanout));
  }

  std::size_t cells = 1;
  for (int d = 0; d <= D; ++d) cells += counts[static_cast<std::size_t>(d)];
  out.cells_before = cells;

  // The cascade worklist. kind 0: row singleton in ∂_d (a free (d-1)-face
  // with one live coface); kind 1: column singleton in ∂_d (a d-cell whose
  // boundary has one live face — a coreduction pair). Both remove the same
  // kind of pair; candidates are re-validated when popped.
  struct Candidate {
    std::int32_t d;
    std::int32_t kind;
    std::uint32_t idx;
  };
  std::vector<Candidate> work;
  for (int d = 0; d <= D; ++d) {
    const MorseLevel& level = levels[static_cast<std::size_t>(d)];
    for (std::uint32_t i = 0; i < level.row_live.size(); ++i) {
      if (level.row_live[i] == 1) work.push_back({d, 0, i});
    }
    for (std::uint32_t j = 0; j < level.col_live.size(); ++j) {
      if (level.col_live[j] == 1) work.push_back({d, 1, j});
    }
  }

  // Propagates the death of cell (dim, x): its own boundary loses a
  // coface (column side of ∂_dim), its cofaces lose a face (row side of
  // ∂_{dim+1}). New singletons join the worklist.
  const auto propagate = [&](int dim, std::uint32_t x) {
    if (dim >= 0) {
      MorseLevel& level = levels[static_cast<std::size_t>(dim)];
      if (dim == 0) {
        if (alive[0][0] != 0 && --level.row_live[0] == 1) {
          work.push_back({0, 0, 0});
        }
      } else {
        const std::size_t fanout = static_cast<std::size_t>(dim) + 1;
        for (std::size_t omit = 0; omit < fanout; ++omit) {
          const std::size_t r = level.links[x * fanout + omit];
          if (alive[static_cast<std::size_t>(dim)][r] == 0) continue;
          if (--level.row_live[r] == 1) {
            work.push_back({dim, 0, static_cast<std::uint32_t>(r)});
          }
        }
      }
    }
    if (dim + 1 <= D) {
      MorseLevel& level = levels[static_cast<std::size_t>(dim) + 1];
      for (std::uint32_t e = level.row_ptr[x]; e < level.row_ptr[x + 1];
           ++e) {
        const std::uint32_t c = level.row_col[e];
        if (alive[static_cast<std::size_t>(dim) + 2][c] == 0) continue;
        if (--level.col_live[c] == 1) {
          work.push_back({dim + 1, 1, c});
        }
      }
    }
  };

  while (!work.empty()) {
    const Candidate cand = work.back();
    work.pop_back();
    const MorseLevel& level = levels[static_cast<std::size_t>(cand.d)];
    std::uint32_t i = 0;  // (d-1)-cell row
    std::uint32_t j = 0;  // d-cell column
    if (cand.kind == 0) {
      i = cand.idx;
      if (alive[static_cast<std::size_t>(cand.d)][i] == 0 ||
          level.row_live[i] != 1) {
        continue;
      }
      bool found = false;
      for (std::uint32_t e = level.row_ptr[i]; e < level.row_ptr[i + 1];
           ++e) {
        const std::uint32_t c = level.row_col[e];
        if (alive[static_cast<std::size_t>(cand.d) + 1][c] != 0) {
          j = c;
          found = true;
          break;
        }
      }
      assert(found);
      if (!found) continue;
    } else {
      j = cand.idx;
      if (alive[static_cast<std::size_t>(cand.d) + 1][j] == 0 ||
          level.col_live[j] != 1) {
        continue;
      }
      bool found = false;
      if (cand.d == 0) {
        if (alive[0][0] != 0) {
          i = 0;
          found = true;
        }
      } else {
        const std::size_t fanout = static_cast<std::size_t>(cand.d) + 1;
        for (std::size_t omit = 0; omit < fanout; ++omit) {
          const std::size_t r = level.links[j * fanout + omit];
          if (alive[static_cast<std::size_t>(cand.d)][r] != 0) {
            i = static_cast<std::uint32_t>(r);
            found = true;
            break;
          }
        }
      }
      assert(found);
      if (!found) continue;
    }
    // Remove the pair ((d-1)-cell i, d-cell j). The incidence coefficient
    // is ±1 by construction and no surviving entry changes value, so this
    // is an elementary reduction of the chain complex.
    alive[static_cast<std::size_t>(cand.d)][i] = 0;
    alive[static_cast<std::size_t>(cand.d) + 1][j] = 0;
    ++out.pairs;
    propagate(cand.d - 1, i);
    propagate(cand.d, j);
  }

  out.cells_after = out.cells_before - 2 * out.pairs;

  // Critical-cell ranks per dimension, in the original (sorted) order, and
  // the reduced boundary matrices over them. Row entry lists are sorted by
  // column, so SparseMatrix::set always appends.
  std::vector<std::vector<std::uint32_t>> rank(
      static_cast<std::size_t>(D) + 2);
  for (std::size_t t = 0; t < alive.size(); ++t) {
    rank[t].assign(alive[t].size(), 0);
    std::uint32_t next = 0;
    for (std::size_t x = 0; x < alive[t].size(); ++x) {
      rank[t][x] = next;
      if (alive[t][x] != 0) ++next;
    }
    if (t >= 1) out.critical[t - 1] = next;
  }
  for (int d = 0; d <= top_dim; ++d) {
    const std::size_t crit_rows =
        d == 0 ? (alive[0][0] != 0 ? 1u : 0u)
               : (d - 1 <= D ? out.critical[static_cast<std::size_t>(d) - 1]
                             : 0);
    const std::size_t crit_cols =
        d <= D ? out.critical[static_cast<std::size_t>(d)] : 0;
    math::SparseMatrix reduced(crit_rows, crit_cols);
    if (d <= D && crit_rows > 0 && crit_cols > 0) {
      const MorseLevel& level = levels[static_cast<std::size_t>(d)];
      for (std::size_t r = 0; r < level.row_live.size(); ++r) {
        if (alive[static_cast<std::size_t>(d)][r] == 0) continue;
        for (std::uint32_t e = level.row_ptr[r]; e < level.row_ptr[r + 1];
             ++e) {
          const std::uint32_t c = level.row_col[e];
          if (alive[static_cast<std::size_t>(d) + 1][c] == 0) continue;
          reduced.set(rank[static_cast<std::size_t>(d)][r],
                      rank[static_cast<std::size_t>(d) + 1][c],
                      level.row_val[e]);
        }
      }
    }
    out.boundary[static_cast<std::size_t>(d)] = std::move(reduced);
  }

  // Aggregate shrink accounting: rows/cols summed over ∂_0..∂_D.
  std::size_t rows_before = 1;
  std::size_t cols_before = 0;
  std::size_t rows_after = alive[0][0] != 0 ? 1 : 0;
  std::size_t cols_after = 0;
  for (int d = 0; d <= D; ++d) {
    cols_before += counts[static_cast<std::size_t>(d)];
    cols_after += out.critical[static_cast<std::size_t>(d)];
    if (d < D) {
      rows_before += counts[static_cast<std::size_t>(d)];
      rows_after += out.critical[static_cast<std::size_t>(d)];
    }
  }
  g_morse_pairs.add(out.pairs);
  g_morse_rows_before.add(rows_before);
  g_morse_rows_after.add(rows_after);
  g_morse_cols_before.add(cols_before);
  g_morse_cols_after.add(cols_after);
  if (out.cells_before > 0) {
    g_morse_shrink.set(static_cast<double>(out.cells_after) /
                       static_cast<double>(out.cells_before));
  }
  return out;
}

}  // namespace psph::topology
