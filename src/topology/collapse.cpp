#include "topology/collapse.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace psph::topology {

namespace {

// Face-poset node bookkeeping for the greedy collapse.
struct Poset {
  std::vector<Simplex> faces;                      // index -> simplex
  std::unordered_map<Simplex, std::size_t, SimplexHash> index;
  std::vector<std::vector<std::size_t>> cofaces;   // codim-1 cofaces
  std::vector<std::vector<std::size_t>> subfaces;  // codim-1 faces
  std::vector<bool> alive;
  std::vector<std::size_t> live_coface_count;
};

Poset build_poset(const SimplicialComplex& k) {
  Poset poset;
  for (int d = 0; d <= k.dimension(); ++d) {
    for (const Simplex& s : k.simplices_of_dim(d)) {
      poset.index.emplace(s, poset.faces.size());
      poset.faces.push_back(s);
    }
  }
  const std::size_t n = poset.faces.size();
  poset.cofaces.assign(n, {});
  poset.subfaces.assign(n, {});
  poset.alive.assign(n, true);
  poset.live_coface_count.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const Simplex& s = poset.faces[i];
    if (s.dimension() == 0) continue;
    for (std::size_t omit = 0; omit < s.size(); ++omit) {
      const std::size_t sub = poset.index.at(s.face_without_index(omit));
      poset.cofaces[sub].push_back(i);
      poset.subfaces[i].push_back(sub);
      ++poset.live_coface_count[sub];
    }
  }
  return poset;
}

}  // namespace

CollapseResult collapse_greedily(const SimplicialComplex& k) {
  CollapseResult result;
  if (k.empty()) return result;

  Poset poset = build_poset(k);
  const std::size_t n = poset.faces.size();

  // Seed the work list with all current free faces (exactly one live
  // codim-1 coface; see header for why that implies a unique coface overall).
  std::vector<std::size_t> work;
  for (std::size_t i = 0; i < n; ++i) {
    if (poset.live_coface_count[i] == 1) work.push_back(i);
  }
  // Prefer collapsing high-dimensional pairs first: sort the seed list so
  // larger faces pop first (the work list is used as a stack).
  std::sort(work.begin(), work.end(), [&](std::size_t a, std::size_t b) {
    return poset.faces[a].dimension() < poset.faces[b].dimension();
  });

  std::size_t live = n;
  while (!work.empty()) {
    const std::size_t sigma = work.back();
    work.pop_back();
    if (!poset.alive[sigma] || poset.live_coface_count[sigma] != 1) continue;
    // Find the unique live coface tau.
    std::size_t tau = n;
    for (std::size_t candidate : poset.cofaces[sigma]) {
      if (poset.alive[candidate]) {
        tau = candidate;
        break;
      }
    }
    if (tau == n) continue;  // stale entry
    // tau must itself have no live cofaces (it must be a facet of the
    // current complex) for (sigma, tau) to be removable.
    if (poset.live_coface_count[tau] != 0) continue;

    poset.alive[sigma] = false;
    poset.alive[tau] = false;
    live -= 2;
    ++result.steps;

    // Removing tau decrements the coface counts of its codim-1 faces;
    // any that drop to one become new free-face candidates.
    for (std::size_t sub : poset.subfaces[tau]) {
      if (!poset.alive[sub]) continue;
      if (--poset.live_coface_count[sub] == 1) work.push_back(sub);
    }
    // Removing sigma likewise affects *its* subfaces.
    for (std::size_t sub : poset.subfaces[sigma]) {
      if (!poset.alive[sub]) continue;
      if (--poset.live_coface_count[sub] == 1) work.push_back(sub);
    }
  }

  result.remaining_faces = live;
  result.collapsed_to_point = (live == 1);
  return result;
}

bool collapses_to_point(const SimplicialComplex& k) {
  return collapse_greedily(k).collapsed_to_point;
}

}  // namespace psph::topology
