#pragma once

// Graph-level connectivity via union-find — the cheap special case of
// 0-connectivity (Definition 1: a complex is 0-connected iff its 1-skeleton
// is connected as a graph). Used as a fast pre-check and as an independent
// oracle for β̃₀ in tests.

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "topology/complex.h"

namespace psph::topology {

/// Disjoint-set union over arbitrary vertex ids.
class UnionFind {
 public:
  /// Ensures `v` exists as a singleton set.
  void add(VertexId v);

  /// Unites the sets of a and b (adding them if new).
  void unite(VertexId a, VertexId b);

  /// True if a and b are in the same set (false if either is unknown).
  bool same(VertexId a, VertexId b);

  /// Number of disjoint sets.
  std::size_t count() const { return components_; }

 private:
  VertexId find(VertexId v);

  std::unordered_map<VertexId, VertexId> parent_;
  std::unordered_map<VertexId, std::size_t> rank_;
  std::size_t components_ = 0;
};

/// Number of connected components of the complex (0 for the empty complex).
std::size_t connected_component_count(const SimplicialComplex& k);

/// True iff the complex is nonempty and has exactly one component —
/// equivalent to β̃₀ = 0, but linear-time.
bool is_connected(const SimplicialComplex& k);

}  // namespace psph::topology
