#pragma once

// Simplicial homology and the homological-connectivity proxy for the paper's
// k-connectivity (Definition 1).
//
// We compute *reduced* homology of the augmented chain complex
//   ... → C_1 → C_0 → Z → 0.
// A complex K is reported "homologically q-connected" when it is nonempty
// and H̃_i(K) = 0 for all i ≤ q. Topological q-connectivity implies this;
// the converse needs simple-connectivity (Hurewicz), which holds for the
// pseudosphere unions the paper studies in the range its bounds need. The
// collapse module (collapse.h) provides the stronger contractibility
// certificate where it applies.
//
// Two engines:
//   * GF(p) Betti numbers — fast sparse elimination; equal to rational Betti
//     numbers unless p divides a torsion coefficient.
//   * exact Smith normal form over BigInt — rank and torsion, used to
//     cross-check the fast path on small instances.

#include <cstdint>
#include <string>
#include <vector>

#include "math/bigint.h"
#include "math/matrix.h"
#include "math/modular.h"
#include "topology/complex.h"

namespace psph::topology {

/// Builds the boundary operator ∂_d : C_d → C_{d-1} with entries ±1 using
/// the sorted-vertex orientation. For d == 0 this returns the augmentation
/// map C_0 → Z (a single row of ones). Row indices follow
/// `simplices_of_dim(d-1)` order; column indices follow `simplices_of_dim(d)`.
math::SparseMatrix boundary_matrix(const SimplicialComplex& k, int d);

struct HomologyOptions {
  /// Compute H̃_d for d = 0..max_dim.
  int max_dim = 2;
  /// Field characteristic for the fast Betti path.
  std::int64_t prime = math::kDefaultPrime;
  /// Additionally run exact SNF and report torsion (slow on big complexes).
  bool exact = false;
  /// Run the discrete-Morse/coreduction preprocessor (collapse.h) and
  /// eliminate only the critical-cell matrices. Betti numbers and torsion
  /// are identical either way (enforced by tests/property_test.cpp); off
  /// exists for differential testing and for benchmarking the raw
  /// elimination path.
  bool morse = true;
};

struct HomologyReport {
  bool nonempty = false;
  /// reduced_betti[d] = rank of H̃_d over GF(p) (== rational rank barring
  /// torsion at p), for d = 0..max_dim.
  std::vector<long long> reduced_betti;
  /// Torsion coefficients per dimension (exact mode only), as decimal
  /// strings, e.g. {"2"} for a Z/2 summand.
  std::vector<std::vector<std::string>> torsion;
  bool exact = false;

  std::string to_string() const;
};

HomologyReport reduced_homology(const SimplicialComplex& k,
                                const HomologyOptions& options = {});

/// Largest q in [-1, up_to_dim] such that K is nonempty and H̃_i(K) = 0 for
/// all 0 ≤ i ≤ q. Returns -2 for the empty complex (which, per the paper's
/// convention, is k-connected only for k < -1). This is the machine proxy
/// for Definition 1 used throughout the experiments.
int homological_connectivity(const SimplicialComplex& k, int up_to_dim,
                             const HomologyOptions& options = {});

/// Convenience: true iff homological_connectivity(k, q) >= q.
bool is_homologically_connected(const SimplicialComplex& k, int q,
                                const HomologyOptions& options = {});

}  // namespace psph::topology
