#pragma once

// Out-of-core frontier spill for the construction pipeline (DESIGN §5.16).
//
// FrontierSpool implements core::FrontierStorage by sealing each chunk the
// pipeline hands it into a kFrontierChunk envelope (magic / version / kind /
// size / checksum, serialize.h) and writing it to a numbered file in a
// spool directory through FsOps — the same injectable I/O layer the result
// store uses, so the fault harness can bit-rot spilled frontiers and prove
// the construction fails loudly instead of building a wrong complex.
// Chunks are read back in append order; clear() deletes the level's files.
//
// The spool is scratch space, not a cache: files are named by sequence
// number (chunk-000000.psph, ...) within a caller-owned directory, and a
// destructor best-effort clears whatever is left.

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <vector>

#include "core/construction.h"
#include "store/fs_ops.h"

namespace psph::store {

struct FrontierSpoolStats {
  std::uint64_t chunks_written = 0;
  std::uint64_t chunks_read = 0;
  std::uint64_t bytes_written = 0;  // sealed envelope bytes on disk
};

class FrontierSpool final : public core::FrontierStorage {
 public:
  /// Spills into `dir` (created if missing) through `fs`; pass
  /// FsOps::real() outside fault tests.
  FrontierSpool(std::shared_ptr<FsOps> fs, std::filesystem::path dir);
  ~FrontierSpool() override;

  FrontierSpool(const FrontierSpool&) = delete;
  FrontierSpool& operator=(const FrontierSpool&) = delete;

  void append_chunk(const std::vector<std::uint8_t>& bytes) override;
  std::size_t chunk_count() const override { return live_chunks_; }
  /// Unseals chunk `index`; throws SerializationError on corrupt bytes and
  /// std::runtime_error if the file vanished.
  std::vector<std::uint8_t> read_chunk(std::size_t index) const override;
  void clear() override;

  const FrontierSpoolStats& stats() const { return stats_; }
  const std::filesystem::path& dir() const { return dir_; }

 private:
  std::filesystem::path chunk_path(std::size_t index) const;

  std::shared_ptr<FsOps> fs_;
  std::filesystem::path dir_;
  std::size_t live_chunks_ = 0;
  mutable FrontierSpoolStats stats_;  // read_chunk is const but counted
};

}  // namespace psph::store
