#pragma once

// Injectable filesystem operations for the result store.
//
// ResultStore performs exactly four kinds of filesystem I/O: whole-file
// reads, durable whole-file writes, renames, and directory fsyncs. Routing
// them through this interface lets the fault-injection harness
// (check/fault_fs.h) simulate short writes, failed renames, ENOSPC, and
// bit-rot on read against the *real* store logic — the property under test
// is that every injected fault degrades to a cache miss plus recomputation,
// never a wrong answer.
//
// The default implementation (FsOps::real()) is crash-safe: write_file
// writes with POSIX I/O and fsyncs the file before returning, and the store
// publishes with write-temp → fsync(temp) → rename → fsync(parent dir), so
// a power cut at any instant leaves either no entry or a fully durable one
// — never a torn entry that becomes observable after reboot.

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <vector>

namespace psph::store {

class FsOps {
 public:
  virtual ~FsOps() = default;

  /// Whole-file read; nullopt if the file is missing or unreadable.
  virtual std::optional<std::vector<std::uint8_t>> read_file(
      const std::filesystem::path& path) = 0;

  /// Durable whole-file write (create/truncate, write all bytes, fsync).
  /// Throws std::runtime_error on any failure, including a short write.
  virtual void write_file(const std::filesystem::path& path,
                          const std::uint8_t* data, std::size_t size) = 0;

  /// Atomic rename within one filesystem. Throws std::runtime_error on
  /// failure.
  virtual void rename(const std::filesystem::path& from,
                      const std::filesystem::path& to) = 0;

  /// fsyncs a directory so a preceding rename into it survives a crash.
  /// Throws std::runtime_error on failure.
  virtual void fsync_dir(const std::filesystem::path& dir) = 0;

  /// Acquires an advisory exclusive flock(2) on `path` (created if
  /// missing), blocking until granted, and returns an opaque handle for
  /// unlock_file. Advisory: it serializes only cooperating lockers — which
  /// is exactly what multiple daemon processes publishing into one store
  /// are. The base implementation is real flock and is intentionally NOT
  /// routed through the fault plan: a lost lock would serialize nothing,
  /// and the property under test for faults is payload integrity, not
  /// mutual exclusion. Throws std::runtime_error on failure.
  virtual int lock_file(const std::filesystem::path& path);
  virtual void unlock_file(int handle);

  /// The shared POSIX-backed implementation.
  static std::shared_ptr<FsOps> real();
};

/// RAII exclusive advisory lock over FsOps::lock_file/unlock_file.
class FileLock {
 public:
  FileLock(FsOps& fs, const std::filesystem::path& path)
      : fs_(fs), handle_(fs.lock_file(path)) {}
  ~FileLock() { fs_.unlock_file(handle_); }

  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

 private:
  FsOps& fs_;
  int handle_;
};

}  // namespace psph::store
