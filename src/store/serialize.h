#pragma once

// Versioned binary serialization for the result store (DESIGN §5).
//
// Every durable artifact is a *sealed envelope*:
//
//   offset 0   "PSPH"                  4-byte magic
//          4   format version          u16 LE   (kFormatVersion)
//          6   payload kind            u16 LE   (PayloadKind)
//          8   payload size            u64 LE
//         16   payload                 size bytes
//       16+n   checksum                u64 LE, util::hash_bytes over
//                                      bytes [4, 16+n) — version, kind,
//                                      size and payload, so a flipped bit
//                                      anywhere but the magic is caught
//
// All integers are little-endian and fixed width; nothing in the format
// depends on std::hash, host endianness is normalized on write/read, and a
// payload round-trips bit-exactly (including BigInt torsion coefficients,
// which travel as raw 32-bit limbs). Truncated, corrupt, wrong-magic,
// wrong-version, and wrong-kind inputs all throw SerializationError with a
// message naming the defect — a cache must fail loudly, never return a
// plausible-looking wrong answer.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/decision_search.h"
#include "core/theorems.h"
#include "math/bigint.h"
#include "topology/complex.h"
#include "topology/homology.h"
#include "topology/simplex.h"

namespace psph::store {

/// Bumped whenever any encoding below changes shape. Envelopes older than
/// kMinSupportedFormatVersion are rejected (the cache recomputes rather than
/// misinterpreting bytes); versions in [kMinSupportedFormatVersion,
/// kFormatVersion] load, because none of the existing payload encodings
/// changed between them — v2 only *adds* the frontier-chunk kind and stamps
/// ResultStore keys so orbit-mode results never alias full-mode ones.
inline constexpr std::uint16_t kFormatVersion = 2;
inline constexpr std::uint16_t kMinSupportedFormatVersion = 1;

enum class PayloadKind : std::uint16_t {
  kRawBytes = 0,
  kSimplex = 1,
  kComplex = 2,
  kHomologyReport = 3,
  kConnectivityCheck = 4,
  kAgreementCheck = 5,
  kBigInt = 6,
  kCacheEntry = 7,    // store.h: key blob + sealed result
  kSchedule = 8,      // check/schedule.h: recorded adversary schedule
  kFrontierChunk = 9,  // frontier.h: spilled construction frontier level
  kDecision = 10,      // solve/decide.h: memoized solvability verdict
};

/// A decided solvability query (solve/decide.h), the payload behind
/// PayloadKind::kDecision. Holds only deterministic fields — the verdict,
/// the canonical (lex-min) witness, and the instance parameters echoed for
/// defence-in-depth on load. Never node counts or portfolio winners, so a
/// cached record is bit-identical to a recomputed one.
struct DecisionRecord {
  std::uint32_t engine_version = 1;
  std::string model;  // "async" | "sync" | "semisync" | "iis"
  std::int32_t processes = 0;  // n+1
  std::int32_t f = 0;
  std::int32_t k = 1;
  std::int32_t mu = 0;
  std::int32_t rounds = 1;
  bool solvable = false;
  bool exhausted = false;
  std::uint64_t protocol_facets = 0;
  std::uint64_t protocol_vertices = 0;
  /// Canonical decision map when solvable: (vertex id, decided value) per
  /// protocol vertex, sorted by vertex id.
  std::vector<std::pair<std::uint64_t, std::int64_t>> witness;

  bool operator==(const DecisionRecord&) const = default;
};

/// Thrown on any malformed input to a decoder.
class SerializationError : public std::runtime_error {
 public:
  explicit SerializationError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Append-only little-endian byte sink.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// u64 length prefix + raw bytes.
  void blob(const void* data, std::size_t size);
  void str(const std::string& s) { blob(s.data(), s.size()); }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian reader over a borrowed buffer; every
/// overrun throws SerializationError("truncated ...").
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::vector<std::uint8_t> blob();
  std::string str();

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }
  /// Throws unless the buffer was consumed exactly.
  void expect_done(const char* context) const;

 private:
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---- envelope ----

/// Wraps a payload in the magic/version/kind/size/checksum envelope.
std::vector<std::uint8_t> seal(PayloadKind kind,
                               const std::vector<std::uint8_t>& payload);

/// Validates an envelope and returns the payload. Throws SerializationError
/// on bad magic, version or kind mismatch, size mismatch, truncation, or a
/// checksum failure.
std::vector<std::uint8_t> unseal(const std::uint8_t* data, std::size_t size,
                                 PayloadKind expected_kind);
std::vector<std::uint8_t> unseal(const std::vector<std::uint8_t>& bytes,
                                 PayloadKind expected_kind);

// ---- per-type encodings (raw payloads; pair with seal/unseal for disk) ----

void encode_bigint(ByteWriter& out, const math::BigInt& value);
math::BigInt decode_bigint(ByteReader& in);

void encode_simplex(ByteWriter& out, const topology::Simplex& s);
topology::Simplex decode_simplex(ByteReader& in);

/// Canonical facet encoding: facet count then each facet in the complex's
/// deterministic sorted order. Equal complexes encode to equal bytes, which
/// is what makes this usable inside cache keys.
void encode_complex(ByteWriter& out, const topology::SimplicialComplex& k);
topology::SimplicialComplex decode_complex(ByteReader& in);

void encode_homology_report(ByteWriter& out,
                            const topology::HomologyReport& report);
topology::HomologyReport decode_homology_report(ByteReader& in);

void encode_connectivity_check(ByteWriter& out,
                               const core::ConnectivityCheck& check);
core::ConnectivityCheck decode_connectivity_check(ByteReader& in);

void encode_agreement_check(ByteWriter& out, const core::AgreementCheck& check);
core::AgreementCheck decode_agreement_check(ByteReader& in);

void encode_decision(ByteWriter& out, const DecisionRecord& record);
DecisionRecord decode_decision(ByteReader& in);

// ---- sealed convenience round-trips ----

std::vector<std::uint8_t> serialize_simplex(const topology::Simplex& s);
topology::Simplex deserialize_simplex(const std::vector<std::uint8_t>& bytes);

std::vector<std::uint8_t> serialize_complex(
    const topology::SimplicialComplex& k);
topology::SimplicialComplex deserialize_complex(
    const std::vector<std::uint8_t>& bytes);

std::vector<std::uint8_t> serialize_homology_report(
    const topology::HomologyReport& report);
topology::HomologyReport deserialize_homology_report(
    const std::vector<std::uint8_t>& bytes);

std::vector<std::uint8_t> serialize_connectivity_check(
    const core::ConnectivityCheck& check);
core::ConnectivityCheck deserialize_connectivity_check(
    const std::vector<std::uint8_t>& bytes);

std::vector<std::uint8_t> serialize_agreement_check(
    const core::AgreementCheck& check);
core::AgreementCheck deserialize_agreement_check(
    const std::vector<std::uint8_t>& bytes);

std::vector<std::uint8_t> serialize_decision(const DecisionRecord& record);
DecisionRecord deserialize_decision(const std::vector<std::uint8_t>& bytes);

}  // namespace psph::store
