#include "store/store.h"

#include <unistd.h>

#include <stdexcept>

#include "obs/obs.h"
#include "util/hash.h"

namespace psph::store {

namespace {

namespace fs = std::filesystem;

// Store observability: load/save latency spans (arg = payload bytes) plus
// counters mirroring StoreStats so the trace is self-contained even when
// the caller never prints stats(). hit_rate is cumulative over the process.
obs::Counter g_obs_hits("store.hits");
obs::Counter g_obs_misses("store.misses");
obs::Counter g_obs_writes("store.writes");
obs::Counter g_obs_corrupt("store.corrupt");
obs::Gauge g_obs_hit_rate("store.hit_rate");

// Independent seeds give two 64-bit digests over the same blob; together
// they address 2^128 states, making accidental collisions negligible (and
// load() still verifies the full key blob, so even a collision is safe).
constexpr std::uint64_t kSeedHi = 0x5bd1e995u;
constexpr std::uint64_t kSeedLo = 0x27d4eb2fu;

}  // namespace

std::string CacheKey::hex() const {
  static const char* digits = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t word = i < 8 ? hi : lo;
    const int shift = 8 * (7 - (i % 8));
    const std::uint8_t byte = static_cast<std::uint8_t>(word >> shift);
    out[2 * i] = digits[byte >> 4];
    out[2 * i + 1] = digits[byte & 0xf];
  }
  return out;
}

CacheKeyBuilder::CacheKeyBuilder(const std::string& query_kind) {
  writer_.u16(kFormatVersion);
  writer_.str(query_kind);
}

CacheKeyBuilder& CacheKeyBuilder::param(std::int64_t value) {
  writer_.u8(0x01);  // tag bytes keep (1, "x") distinct from ("1x") etc.
  writer_.i64(value);
  return *this;
}

CacheKeyBuilder& CacheKeyBuilder::param_string(const std::string& value) {
  writer_.u8(0x02);
  writer_.str(value);
  return *this;
}

CacheKeyBuilder& CacheKeyBuilder::complex(
    const topology::SimplicialComplex& k) {
  writer_.u8(0x03);
  encode_complex(writer_, k);
  return *this;
}

CacheKeyBuilder& CacheKeyBuilder::raw(const std::vector<std::uint8_t>& bytes) {
  writer_.u8(0x04);
  writer_.blob(bytes.data(), bytes.size());
  return *this;
}

CacheKey CacheKeyBuilder::key() const {
  const std::vector<std::uint8_t>& blob = writer_.bytes();
  CacheKey key;
  key.hi = util::hash_bytes(blob.data(), blob.size(), kSeedHi);
  key.lo = util::hash_bytes(blob.data(), blob.size(), kSeedLo);
  return key;
}

ResultStore::ResultStore(fs::path root, std::shared_ptr<FsOps> fs)
    : root_(std::move(root)), fs_(fs ? std::move(fs) : FsOps::real()) {
  if (fs::exists(root_) && !fs::is_directory(root_)) {
    throw std::runtime_error("result store root is not a directory: " +
                             root_.string());
  }
  fs::create_directories(root_ / "objects");
  fs::create_directories(root_ / "tmp");
}

fs::path ResultStore::entry_path(const CacheKey& key) const {
  const std::string hex = key.hex();
  return root_ / "objects" / hex.substr(0, 2) / hex.substr(2, 2) /
         (hex + ".psph");
}

void ResultStore::note_outcome(bool hit) {
  if (!obs::enabled()) return;
  if (hit) {
    g_obs_hits.add(1);
  } else {
    g_obs_misses.add(1);
  }
  const std::uint64_t hits = hits_.load(std::memory_order_relaxed);
  const std::uint64_t misses = misses_.load(std::memory_order_relaxed);
  const std::uint64_t lookups = hits + misses;
  if (lookups != 0) {
    g_obs_hit_rate.set(static_cast<double>(hits) /
                       static_cast<double>(lookups));
  }
}

std::optional<std::vector<std::uint8_t>> ResultStore::load(
    const CacheKeyBuilder& key) {
  obs::SpanTimer span("store.load");
  const fs::path path = entry_path(key.key());
  std::optional<std::vector<std::uint8_t>> file = fs_->read_file(path);
  if (!file.has_value()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    note_outcome(false);
    return std::nullopt;
  }
  bytes_read_.fetch_add(file->size(), std::memory_order_relaxed);
  try {
    const std::vector<std::uint8_t> payload =
        unseal(*file, PayloadKind::kCacheEntry);
    ByteReader in(payload);
    const std::vector<std::uint8_t> stored_blob = in.blob();
    std::vector<std::uint8_t> result = in.blob();
    in.expect_done("cache entry");
    if (stored_blob != key.blob()) {
      // Hash collision or foreign entry: treat as a miss, never as truth.
      corrupt_.fetch_add(1, std::memory_order_relaxed);
      misses_.fetch_add(1, std::memory_order_relaxed);
      if (obs::enabled()) g_obs_corrupt.add(1);
      note_outcome(false);
      return std::nullopt;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    note_outcome(true);
    return result;
  } catch (const SerializationError&) {
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) g_obs_corrupt.add(1);
    note_outcome(false);
    return std::nullopt;
  }
}

bool ResultStore::contains(const CacheKeyBuilder& key) {
  return load(key).has_value();
}

void ResultStore::save(const CacheKeyBuilder& key,
                       const std::vector<std::uint8_t>& result_bytes) {
  obs::SpanTimer span("store.save",
                      static_cast<std::int64_t>(result_bytes.size()));
  ByteWriter payload;
  payload.blob(key.blob().data(), key.blob().size());
  payload.blob(result_bytes.data(), result_bytes.size());
  const std::vector<std::uint8_t> sealed =
      seal(PayloadKind::kCacheEntry, payload.bytes());

  const fs::path final_path = entry_path(key.key());
  fs::create_directories(final_path.parent_path());

  // Unique temp name per (process, process-wide sequence) so concurrent
  // writers never write through each other's handle — the sequence must be
  // global, not per-store: two ResultStore instances sharing one root would
  // otherwise collide on (key, pid, 0) and rename each other's file away.
  static std::atomic<std::uint64_t> g_tmp_sequence{0};
  const std::uint64_t sequence =
      g_tmp_sequence.fetch_add(1, std::memory_order_relaxed);
  const fs::path tmp_path =
      root_ / "tmp" /
      (key.key().hex() + "." + std::to_string(::getpid()) + "." +
       std::to_string(sequence));
  // Crash-safe publication: the temp write fsyncs the bytes, the rename
  // makes them visible atomically, and the directory fsync makes the rename
  // itself durable. Readers see either no entry or the whole entry — even
  // across a power cut.
  fs_->write_file(tmp_path, sealed.data(), sealed.size());
  {
    // Advisory cross-process serialization of the publish step: rename is
    // atomic on its own, but N daemons sharing one root would otherwise
    // interleave rename+dir-fsync pairs, leaving a window where a crash
    // strands a rename that no surviving process ever fsyncs. The lock
    // covers only rename+fsync — the (slow) temp write stays concurrent.
    FileLock publish_lock(*fs_, root_ / "lock");
    fs_->rename(tmp_path, final_path);
    fs_->fsync_dir(final_path.parent_path());
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
  bytes_written_.fetch_add(sealed.size(), std::memory_order_relaxed);
  if (obs::enabled()) g_obs_writes.add(1);
}

StoreStats ResultStore::stats() const {
  StoreStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.writes = writes_.load(std::memory_order_relaxed);
  stats.corrupt_entries = corrupt_.load(std::memory_order_relaxed);
  stats.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  stats.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace psph::store
