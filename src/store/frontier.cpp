#include "store/frontier.h"

#include <cstdio>
#include <stdexcept>

#include "store/serialize.h"

namespace psph::store {

FrontierSpool::FrontierSpool(std::shared_ptr<FsOps> fs,
                             std::filesystem::path dir)
    : fs_(std::move(fs)), dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

FrontierSpool::~FrontierSpool() {
  try {
    clear();
  } catch (...) {
    // Scratch cleanup only; never throw from a destructor.
  }
}

std::filesystem::path FrontierSpool::chunk_path(std::size_t index) const {
  char name[32];
  std::snprintf(name, sizeof(name), "chunk-%06zu.psph", index);
  return dir_ / name;
}

void FrontierSpool::append_chunk(const std::vector<std::uint8_t>& bytes) {
  const std::vector<std::uint8_t> sealed =
      seal(PayloadKind::kFrontierChunk, bytes);
  fs_->write_file(chunk_path(live_chunks_), sealed.data(), sealed.size());
  ++live_chunks_;
  ++stats_.chunks_written;
  stats_.bytes_written += sealed.size();
}

std::vector<std::uint8_t> FrontierSpool::read_chunk(std::size_t index) const {
  if (index >= live_chunks_) {
    throw std::out_of_range("FrontierSpool: chunk index out of range");
  }
  const std::filesystem::path path = chunk_path(index);
  const std::optional<std::vector<std::uint8_t>> sealed =
      fs_->read_file(path);
  if (!sealed) {
    throw std::runtime_error("FrontierSpool: spilled chunk vanished: " +
                             path.string());
  }
  ++stats_.chunks_read;
  // unseal throws SerializationError on any corruption — a damaged spill
  // must abort the construction, never feed it wrong facets.
  return unseal(*sealed, PayloadKind::kFrontierChunk);
}

void FrontierSpool::clear() {
  for (std::size_t i = 0; i < live_chunks_; ++i) {
    std::error_code ec;  // best effort; a leftover file is only disk noise
    std::filesystem::remove(chunk_path(i), ec);
  }
  live_chunks_ = 0;
}

}  // namespace psph::store
