#include "store/serialize.h"

#include <cstring>

#include "util/hash.h"

namespace psph::store {

namespace {

constexpr char kMagic[4] = {'P', 'S', 'P', 'H'};
constexpr std::size_t kHeaderSize = 16;   // magic + version + kind + size
constexpr std::size_t kChecksumSize = 8;

[[noreturn]] void fail(const std::string& what) {
  throw SerializationError(what);
}

}  // namespace

// ---- ByteWriter ----

void ByteWriter::u16(std::uint16_t v) {
  bytes_.push_back(static_cast<std::uint8_t>(v));
  bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int b = 0; b < 4; ++b) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
  }
}

void ByteWriter::blob(const void* data, std::size_t size) {
  u64(size);
  const auto* p = static_cast<const std::uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + size);
}

// ---- ByteReader ----

void ByteReader::need(std::size_t n) const {
  if (size_ - pos_ < n) fail("truncated input: need " + std::to_string(n) +
                             " bytes, have " + std::to_string(size_ - pos_));
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(
      data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int b = 0; b < 4; ++b) {
    v |= static_cast<std::uint32_t>(data_[pos_ + b]) << (8 * b);
  }
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int b = 0; b < 8; ++b) {
    v |= static_cast<std::uint64_t>(data_[pos_ + b]) << (8 * b);
  }
  pos_ += 8;
  return v;
}

std::vector<std::uint8_t> ByteReader::blob() {
  const std::uint64_t size = u64();
  need(size);
  std::vector<std::uint8_t> out(data_ + pos_, data_ + pos_ + size);
  pos_ += size;
  return out;
}

std::string ByteReader::str() {
  const std::uint64_t size = u64();
  need(size);
  std::string out(reinterpret_cast<const char*>(data_ + pos_), size);
  pos_ += size;
  return out;
}

void ByteReader::expect_done(const char* context) const {
  if (pos_ != size_) {
    fail(std::string(context) + ": " + std::to_string(size_ - pos_) +
         " trailing bytes");
  }
}

// ---- envelope ----

std::vector<std::uint8_t> seal(PayloadKind kind,
                               const std::vector<std::uint8_t>& payload) {
  ByteWriter out;
  for (char c : kMagic) out.u8(static_cast<std::uint8_t>(c));
  out.u16(kFormatVersion);
  out.u16(static_cast<std::uint16_t>(kind));
  out.u64(payload.size());
  std::vector<std::uint8_t> bytes = out.take();
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  const std::uint64_t checksum =
      util::hash_bytes(bytes.data() + 4, bytes.size() - 4);
  ByteWriter tail;
  tail.u64(checksum);
  const std::vector<std::uint8_t>& t = tail.bytes();
  bytes.insert(bytes.end(), t.begin(), t.end());
  return bytes;
}

std::vector<std::uint8_t> unseal(const std::uint8_t* data, std::size_t size,
                                 PayloadKind expected_kind) {
  if (size < kHeaderSize + kChecksumSize) {
    fail("truncated envelope: " + std::to_string(size) + " bytes");
  }
  if (std::memcmp(data, kMagic, 4) != 0) fail("bad magic: not a PSPH blob");
  ByteReader header(data + 4, kHeaderSize - 4);
  const std::uint16_t version = header.u16();
  if (version < kMinSupportedFormatVersion || version > kFormatVersion) {
    fail("format version mismatch: file has v" + std::to_string(version) +
         ", this build reads v" + std::to_string(kMinSupportedFormatVersion) +
         "..v" + std::to_string(kFormatVersion));
  }
  const std::uint16_t kind = header.u16();
  const std::uint64_t payload_size = header.u64();
  if (size != kHeaderSize + payload_size + kChecksumSize) {
    fail("size mismatch: header claims " + std::to_string(payload_size) +
         " payload bytes, envelope has " +
         std::to_string(size - kHeaderSize - kChecksumSize));
  }
  ByteReader tail(data + size - kChecksumSize, kChecksumSize);
  const std::uint64_t stored_checksum = tail.u64();
  const std::uint64_t actual_checksum =
      util::hash_bytes(data + 4, size - 4 - kChecksumSize);
  if (stored_checksum != actual_checksum) {
    fail("checksum mismatch: payload corrupt");
  }
  if (kind != static_cast<std::uint16_t>(expected_kind)) {
    fail("payload kind mismatch: file has kind " + std::to_string(kind) +
         ", expected " +
         std::to_string(static_cast<std::uint16_t>(expected_kind)));
  }
  return std::vector<std::uint8_t>(data + kHeaderSize,
                                   data + kHeaderSize + payload_size);
}

std::vector<std::uint8_t> unseal(const std::vector<std::uint8_t>& bytes,
                                 PayloadKind expected_kind) {
  return unseal(bytes.data(), bytes.size(), expected_kind);
}

// ---- per-type encodings ----

void encode_bigint(ByteWriter& out, const math::BigInt& value) {
  out.u8(value.is_negative() ? 1 : 0);
  const std::vector<std::uint32_t>& limbs = value.limbs();
  out.u32(static_cast<std::uint32_t>(limbs.size()));
  for (std::uint32_t limb : limbs) out.u32(limb);
}

math::BigInt decode_bigint(ByteReader& in) {
  const std::uint8_t negative = in.u8();
  if (negative > 1) fail("BigInt sign byte out of range");
  const std::uint32_t count = in.u32();
  std::vector<std::uint32_t> limbs;
  limbs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) limbs.push_back(in.u32());
  if (!limbs.empty() && limbs.back() == 0) {
    fail("BigInt magnitude has a leading zero limb");
  }
  return math::BigInt::from_limbs(negative != 0, std::move(limbs));
}

void encode_simplex(ByteWriter& out, const topology::Simplex& s) {
  const std::vector<topology::VertexId>& vertices = s.vertices();
  out.u32(static_cast<std::uint32_t>(vertices.size()));
  for (topology::VertexId v : vertices) out.u32(v);
}

topology::Simplex decode_simplex(ByteReader& in) {
  const std::uint32_t count = in.u32();
  std::vector<topology::VertexId> vertices;
  vertices.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) vertices.push_back(in.u32());
  // Simplex's constructor re-sorts and rejects duplicates, so a tampered
  // vertex list cannot produce an out-of-contract object.
  return topology::Simplex(std::move(vertices));
}

void encode_complex(ByteWriter& out, const topology::SimplicialComplex& k) {
  const std::vector<topology::Simplex> facets = k.facets();
  out.u64(facets.size());
  for (const topology::Simplex& facet : facets) encode_simplex(out, facet);
}

topology::SimplicialComplex decode_complex(ByteReader& in) {
  const std::uint64_t count = in.u64();
  topology::SimplicialComplex k;
  for (std::uint64_t i = 0; i < count; ++i) {
    k.add_facet(decode_simplex(in));
  }
  return k;
}

void encode_homology_report(ByteWriter& out,
                            const topology::HomologyReport& report) {
  out.u8(report.nonempty ? 1 : 0);
  out.u8(report.exact ? 1 : 0);
  out.u32(static_cast<std::uint32_t>(report.reduced_betti.size()));
  for (long long betti : report.reduced_betti) out.i64(betti);
  out.u32(static_cast<std::uint32_t>(report.torsion.size()));
  for (const std::vector<std::string>& dim : report.torsion) {
    out.u32(static_cast<std::uint32_t>(dim.size()));
    for (const std::string& coefficient : dim) {
      // Torsion coefficients are decimal renderings of BigInts; store the
      // exact limbs so round-trips cannot drift through string parsing.
      encode_bigint(out, math::BigInt(coefficient));
    }
  }
}

topology::HomologyReport decode_homology_report(ByteReader& in) {
  topology::HomologyReport report;
  report.nonempty = in.u8() != 0;
  report.exact = in.u8() != 0;
  const std::uint32_t betti_count = in.u32();
  report.reduced_betti.reserve(betti_count);
  for (std::uint32_t i = 0; i < betti_count; ++i) {
    report.reduced_betti.push_back(in.i64());
  }
  const std::uint32_t torsion_dims = in.u32();
  report.torsion.reserve(torsion_dims);
  for (std::uint32_t d = 0; d < torsion_dims; ++d) {
    const std::uint32_t coefficients = in.u32();
    std::vector<std::string> dim;
    dim.reserve(coefficients);
    for (std::uint32_t i = 0; i < coefficients; ++i) {
      dim.push_back(decode_bigint(in).to_string());
    }
    report.torsion.push_back(std::move(dim));
  }
  return report;
}

void encode_connectivity_check(ByteWriter& out,
                               const core::ConnectivityCheck& check) {
  out.i32(check.expected);
  out.i32(check.measured);
  out.u8(check.satisfied ? 1 : 0);
  out.u64(check.facet_count);
  out.u64(check.vertex_count);
  out.i32(check.dimension);
}

core::ConnectivityCheck decode_connectivity_check(ByteReader& in) {
  core::ConnectivityCheck check;
  check.expected = in.i32();
  check.measured = in.i32();
  check.satisfied = in.u8() != 0;
  check.facet_count = in.u64();
  check.vertex_count = in.u64();
  check.dimension = in.i32();
  return check;
}

void encode_agreement_check(ByteWriter& out,
                            const core::AgreementCheck& check) {
  out.u8(check.impossible ? 1 : 0);
  out.u8(check.possible ? 1 : 0);
  out.u8(check.search_exhausted ? 1 : 0);
  out.u64(check.nodes);
  out.u64(check.protocol_facets);
  out.u64(check.protocol_vertices);
}

core::AgreementCheck decode_agreement_check(ByteReader& in) {
  core::AgreementCheck check;
  check.impossible = in.u8() != 0;
  check.possible = in.u8() != 0;
  check.search_exhausted = in.u8() != 0;
  check.nodes = in.u64();
  check.protocol_facets = in.u64();
  check.protocol_vertices = in.u64();
  return check;
}

void encode_decision(ByteWriter& out, const DecisionRecord& record) {
  out.u32(record.engine_version);
  out.str(record.model);
  out.i32(record.processes);
  out.i32(record.f);
  out.i32(record.k);
  out.i32(record.mu);
  out.i32(record.rounds);
  out.u8(record.solvable ? 1 : 0);
  out.u8(record.exhausted ? 1 : 0);
  out.u64(record.protocol_facets);
  out.u64(record.protocol_vertices);
  out.u64(record.witness.size());
  for (const auto& [vertex, value] : record.witness) {
    out.u64(vertex);
    out.i64(value);
  }
}

DecisionRecord decode_decision(ByteReader& in) {
  DecisionRecord record;
  record.engine_version = in.u32();
  record.model = in.str();
  record.processes = in.i32();
  record.f = in.i32();
  record.k = in.i32();
  record.mu = in.i32();
  record.rounds = in.i32();
  record.solvable = in.u8() != 0;
  record.exhausted = in.u8() != 0;
  record.protocol_facets = in.u64();
  record.protocol_vertices = in.u64();
  const std::uint64_t count = in.u64();
  if (count > in.remaining() / 16) {
    throw SerializationError("decision witness count exceeds payload");
  }
  record.witness.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t vertex = in.u64();
    const std::int64_t value = in.i64();
    record.witness.emplace_back(vertex, value);
  }
  return record;
}

// ---- sealed convenience round-trips ----

namespace {

template <typename T, typename Encode>
std::vector<std::uint8_t> seal_with(PayloadKind kind, const T& value,
                                    Encode encode) {
  ByteWriter payload;
  encode(payload, value);
  return seal(kind, payload.bytes());
}

template <typename Decode>
auto unseal_with(const std::vector<std::uint8_t>& bytes, PayloadKind kind,
                 const char* context, Decode decode) {
  const std::vector<std::uint8_t> payload = unseal(bytes, kind);
  ByteReader in(payload);
  auto value = decode(in);
  in.expect_done(context);
  return value;
}

}  // namespace

std::vector<std::uint8_t> serialize_simplex(const topology::Simplex& s) {
  return seal_with(PayloadKind::kSimplex, s, encode_simplex);
}

topology::Simplex deserialize_simplex(const std::vector<std::uint8_t>& bytes) {
  return unseal_with(bytes, PayloadKind::kSimplex, "simplex", decode_simplex);
}

std::vector<std::uint8_t> serialize_complex(
    const topology::SimplicialComplex& k) {
  return seal_with(PayloadKind::kComplex, k, encode_complex);
}

topology::SimplicialComplex deserialize_complex(
    const std::vector<std::uint8_t>& bytes) {
  return unseal_with(bytes, PayloadKind::kComplex, "complex", decode_complex);
}

std::vector<std::uint8_t> serialize_homology_report(
    const topology::HomologyReport& report) {
  return seal_with(PayloadKind::kHomologyReport, report,
                   encode_homology_report);
}

topology::HomologyReport deserialize_homology_report(
    const std::vector<std::uint8_t>& bytes) {
  return unseal_with(bytes, PayloadKind::kHomologyReport, "homology report",
                     decode_homology_report);
}

std::vector<std::uint8_t> serialize_connectivity_check(
    const core::ConnectivityCheck& check) {
  return seal_with(PayloadKind::kConnectivityCheck, check,
                   encode_connectivity_check);
}

core::ConnectivityCheck deserialize_connectivity_check(
    const std::vector<std::uint8_t>& bytes) {
  return unseal_with(bytes, PayloadKind::kConnectivityCheck,
                     "connectivity check", decode_connectivity_check);
}

std::vector<std::uint8_t> serialize_agreement_check(
    const core::AgreementCheck& check) {
  return seal_with(PayloadKind::kAgreementCheck, check, encode_agreement_check);
}

core::AgreementCheck deserialize_agreement_check(
    const std::vector<std::uint8_t>& bytes) {
  return unseal_with(bytes, PayloadKind::kAgreementCheck, "agreement check",
                     decode_agreement_check);
}

std::vector<std::uint8_t> serialize_decision(const DecisionRecord& record) {
  return seal_with(PayloadKind::kDecision, record, encode_decision);
}

DecisionRecord deserialize_decision(const std::vector<std::uint8_t>& bytes) {
  return unseal_with(bytes, PayloadKind::kDecision, "decision record",
                     decode_decision);
}

}  // namespace psph::store
