#include "store/fs_ops.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace psph::store {

namespace {

namespace fs = std::filesystem;

[[noreturn]] void fail(const std::string& what, const fs::path& path) {
  throw std::runtime_error(what + " " + path.string() + ": " +
                           std::strerror(errno));
}

class RealFsOps final : public FsOps {
 public:
  std::optional<std::vector<std::uint8_t>> read_file(
      const fs::path& path) override {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                    std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof()) return std::nullopt;
    return bytes;
  }

  void write_file(const fs::path& path, const std::uint8_t* data,
                  std::size_t size) override {
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) fail("store: cannot open for write", path);
    std::size_t written = 0;
    while (written < size) {
      const ssize_t n = ::write(fd, data + written, size - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        fail("store: write failed on", path);
      }
      written += static_cast<std::size_t>(n);
    }
    // Durability: the bytes must hit stable storage *before* the rename
    // that publishes them, or a crash could expose a named-but-empty entry.
    if (::fsync(fd) != 0) {
      ::close(fd);
      fail("store: fsync failed on", path);
    }
    if (::close(fd) != 0) fail("store: close failed on", path);
  }

  void rename(const fs::path& from, const fs::path& to) override {
    std::error_code ec;
    fs::rename(from, to, ec);
    if (ec) {
      throw std::runtime_error("store: rename " + from.string() + " -> " +
                               to.string() + ": " + ec.message());
    }
  }

  void fsync_dir(const fs::path& dir) override {
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) fail("store: cannot open directory", dir);
    if (::fsync(fd) != 0) {
      ::close(fd);
      fail("store: fsync failed on directory", dir);
    }
    ::close(fd);
  }
};

}  // namespace

int FsOps::lock_file(const fs::path& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) fail("store: cannot open lock file", path);
  while (::flock(fd, LOCK_EX) != 0) {
    if (errno == EINTR) continue;
    ::close(fd);
    fail("store: flock failed on", path);
  }
  return fd;
}

void FsOps::unlock_file(int handle) {
  // Closing the descriptor releases the flock; an explicit unlock first
  // keeps the release visible even if the close is delayed by a dup.
  ::flock(handle, LOCK_UN);
  ::close(handle);
}

std::shared_ptr<FsOps> FsOps::real() {
  static const std::shared_ptr<FsOps> instance = std::make_shared<RealFsOps>();
  return instance;
}

}  // namespace psph::store
