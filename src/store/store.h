#pragma once

// Content-addressed on-disk result store (DESIGN §5).
//
// A cache key is the 128-bit hash of a *key blob*: format version, query
// kind, query parameters, and (when the query is over an explicit complex)
// the canonical facet encoding. Entries live under the store root in a
// two-level fan-out derived from the key's hex rendering,
//
//   <root>/objects/ab/cd/abcd0123...ef.psph
//
// so a directory never accumulates more than 256 children per level. Each
// entry file is a sealed kCacheEntry envelope wrapping (key blob, result
// bytes); load() re-validates the checksum AND compares the stored key blob
// against the query's, so a hash collision or a corrupted/truncated entry
// degrades to a cache miss plus recomputation, never a wrong answer.
//
// Publication is atomic AND durable: writers serialize into
// <root>/tmp/<unique>, fsync the temp file, std::filesystem::rename onto
// the final path, then fsync the parent directory. rename(2) within one
// filesystem is atomic, so concurrent writers race benignly (last rename
// wins with identical content); the fsyncs mean a crash at any instant —
// even a power cut mid-publish — leaves either no entry or a fully written
// one after reboot, never a torn entry. The rename+fsync pair additionally
// holds an advisory flock on <root>/lock, so multiple *processes* (daemon
// fleets sharing one store) publish one at a time — the only cross-process
// coordination the store needs, and it goes through FsOps like every other
// filesystem touch. All filesystem I/O goes through an
// injectable FsOps (fs_ops.h) so the fault-injection harness can exercise
// short writes, failed renames, ENOSPC, and read bit-rot against the real
// store logic.

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "store/fs_ops.h"
#include "store/serialize.h"
#include "topology/complex.h"

namespace psph::store {

/// 128-bit content hash, rendered as 32 lowercase hex characters.
struct CacheKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  std::string hex() const;
  bool operator==(const CacheKey& other) const {
    return hi == other.hi && lo == other.lo;
  }
};

/// Accumulates the canonical key blob for one query and hashes it.
///
///   CacheKeyBuilder key("lemma12");
///   key.param(n1).param(m1).param(f).param(r);
///   store.load(key) / store.save(key, result_bytes);
///
/// The blob starts with the format version, so bumping kFormatVersion
/// invalidates every old entry by construction.
class CacheKeyBuilder {
 public:
  explicit CacheKeyBuilder(const std::string& query_kind);

  CacheKeyBuilder& param(std::int64_t value);
  CacheKeyBuilder& param_string(const std::string& value);
  /// Mixes in the canonical facet encoding of `k`.
  CacheKeyBuilder& complex(const topology::SimplicialComplex& k);
  /// Mixes in arbitrary pre-encoded key material (length-prefixed).
  CacheKeyBuilder& raw(const std::vector<std::uint8_t>& bytes);

  CacheKey key() const;
  /// The exact bytes the key hashes; stored in each entry for collision
  /// detection on load.
  const std::vector<std::uint8_t>& blob() const { return writer_.bytes(); }

 private:
  ByteWriter writer_;
};

struct StoreStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writes = 0;
  std::uint64_t corrupt_entries = 0;  // counted as misses
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
};

class ResultStore {
 public:
  /// Creates <root>/objects and <root>/tmp if missing. Throws
  /// std::runtime_error if the root exists but is not a directory. `fs`
  /// routes all file I/O; null means the real filesystem.
  explicit ResultStore(std::filesystem::path root,
                       std::shared_ptr<FsOps> fs = nullptr);

  /// Returns the stored result bytes for `key`, or nullopt on miss. A
  /// present-but-invalid entry (truncated, corrupt, version-skewed, or a
  /// key-blob mismatch) counts as a miss. Thread-safe.
  std::optional<std::vector<std::uint8_t>> load(const CacheKeyBuilder& key);

  /// Atomically publishes `result_bytes` under `key` (write temp + rename).
  /// Thread-safe; concurrent saves of the same key are benign.
  void save(const CacheKeyBuilder& key,
            const std::vector<std::uint8_t>& result_bytes);

  /// True if a valid entry exists (same validation as load). Thread-safe.
  bool contains(const CacheKeyBuilder& key);

  /// Final on-disk path for a key (exists only after a save).
  std::filesystem::path entry_path(const CacheKey& key) const;

  const std::filesystem::path& root() const { return root_; }

  /// Snapshot of the counters (monotonic across the store's lifetime).
  StoreStats stats() const;

 private:
  /// Feeds the observability counters/gauge after each lookup resolves.
  void note_outcome(bool hit);

  std::filesystem::path root_;
  std::shared_ptr<FsOps> fs_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> corrupt_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
};

}  // namespace psph::store
