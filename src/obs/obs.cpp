#include "obs/obs.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>

namespace psph::obs {

namespace {

// Per-thread recording state. Owned jointly by the recording thread (its
// thread_local shared_ptr) and the registry, so state written by a thread
// that has since exited (e.g. a resized ThreadPool's workers) still merges
// into snapshots.
struct ThreadState {
  int tid = 0;
  std::vector<std::uint64_t> counters;  // indexed by Counter id

  struct GaugeCell {
    double last = 0.0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
    std::uint64_t samples = 0;
    std::uint64_t last_seq = 0;  // global sequence of the latest sample
  };
  std::vector<GaugeCell> gauges;  // indexed by Gauge id

  struct SpanAgg {
    const char* name = nullptr;
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t min_ns = 0;
    std::uint64_t max_ns = 0;
  };
  std::vector<SpanAgg> span_aggs;
  std::unordered_map<const void*, std::size_t> span_index;  // name ptr → agg

  struct Event {
    const char* name;
    std::uint64_t start_ns;
    std::uint64_t dur_ns;
    std::int64_t arg;
  };
  std::vector<Event> events;
  std::uint64_t events_dropped = 0;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadState>> threads;
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::atomic<std::uint64_t> gauge_seq{1};
  std::atomic<std::size_t> event_capacity{std::size_t{1} << 20};
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

// Leaked on purpose: thread_local destructors of late-exiting threads and
// atexit-time flushes may run after static destruction would have torn the
// registry down.
Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

thread_local ThreadState* t_state = nullptr;
// Keeps the shared_ptr alive for the thread's lifetime; the registry holds
// the other reference.
thread_local std::shared_ptr<ThreadState> t_state_owner;

ThreadState& state() {
  if (t_state == nullptr) {
    auto fresh = std::make_shared<ThreadState>();
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    fresh->tid = static_cast<int>(reg.threads.size());
    reg.threads.push_back(fresh);
    t_state_owner = std::move(fresh);
    t_state = t_state_owner.get();
  }
  return *t_state;
}

template <typename T>
void grow_to(std::vector<T>& cells, std::size_t id) {
  if (cells.size() <= id) cells.resize(id + 1);
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string pretty_ns(std::uint64_t ns) {
  char buf[32];
  const double v = static_cast<double>(ns);
  if (ns < 10'000ULL) {
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(ns));
  } else if (ns < 10'000'000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fus", v / 1e3);
  } else if (ns < 10'000'000'000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fms", v / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", v / 1e9);
  }
  return buf;
}

}  // namespace

namespace detail {

std::atomic<int> g_enabled{-1};

int resolve_enabled() {
  int value = 1;
  const char* raw = std::getenv("PSPH_OBS");
  if (raw != nullptr && std::strcmp(raw, "0") == 0) value = 0;
  int expected = -1;
  if (!g_enabled.compare_exchange_strong(expected, value,
                                         std::memory_order_relaxed)) {
    value = expected;  // a concurrent resolve or set_enabled won
  }
  return value;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - registry().epoch)
          .count());
}

void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t end_ns, std::int64_t arg) {
  const std::uint64_t dur = end_ns >= start_ns ? end_ns - start_ns : 0;
  ThreadState& s = state();

  const auto [it, inserted] =
      s.span_index.try_emplace(name, s.span_aggs.size());
  if (inserted) {
    s.span_aggs.push_back({name, 1, dur, dur, dur});
  } else {
    ThreadState::SpanAgg& agg = s.span_aggs[it->second];
    ++agg.count;
    agg.total_ns += dur;
    agg.min_ns = std::min(agg.min_ns, dur);
    agg.max_ns = std::max(agg.max_ns, dur);
  }

  if (s.events.size() <
      registry().event_capacity.load(std::memory_order_relaxed)) {
    s.events.push_back({name, start_ns, dur, arg});
  } else {
    ++s.events_dropped;
  }
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

void set_event_capacity(std::size_t cap) {
  registry().event_capacity.store(cap, std::memory_order_relaxed);
}

void reset() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const std::shared_ptr<ThreadState>& s : reg.threads) {
    std::fill(s->counters.begin(), s->counters.end(), 0);
    std::fill(s->gauges.begin(), s->gauges.end(),
              ThreadState::GaugeCell{});
    s->span_aggs.clear();
    s->span_index.clear();
    s->events.clear();
    s->events_dropped = 0;
  }
}

Counter::Counter(const char* name) : name_(name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  id_ = reg.counter_names.size();
  reg.counter_names.emplace_back(name);
}

void Counter::add(std::uint64_t delta) {
  if (!enabled()) return;
  ThreadState& s = state();
  grow_to(s.counters, id_);
  s.counters[id_] += delta;
}

Gauge::Gauge(const char* name) : name_(name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  id_ = reg.gauge_names.size();
  reg.gauge_names.emplace_back(name);
}

void Gauge::set(double value) {
  if (!enabled()) return;
  Registry& reg = registry();
  ThreadState& s = state();
  grow_to(s.gauges, id_);
  ThreadState::GaugeCell& cell = s.gauges[id_];
  if (cell.samples == 0) {
    cell.min = cell.max = value;
  } else {
    cell.min = std::min(cell.min, value);
    cell.max = std::max(cell.max, value);
  }
  cell.last = value;
  cell.sum += value;
  ++cell.samples;
  cell.last_seq = reg.gauge_seq.fetch_add(1, std::memory_order_relaxed);
}

Snapshot snapshot() {
  Registry& reg = registry();
  Snapshot snap;
  std::unordered_map<std::string, std::size_t> span_rows;
  std::vector<std::uint64_t> counter_totals;
  struct MergedGauge {
    GaugeStat stat;
    std::uint64_t last_seq = 0;
  };
  std::vector<MergedGauge> gauge_totals;

  std::lock_guard<std::mutex> lock(reg.mutex);
  counter_totals.assign(reg.counter_names.size(), 0);
  gauge_totals.resize(reg.gauge_names.size());

  for (const std::shared_ptr<ThreadState>& s : reg.threads) {
    for (std::size_t i = 0; i < s->counters.size(); ++i) {
      counter_totals[i] += s->counters[i];
    }
    for (std::size_t i = 0; i < s->gauges.size(); ++i) {
      const ThreadState::GaugeCell& cell = s->gauges[i];
      if (cell.samples == 0) continue;
      MergedGauge& merged = gauge_totals[i];
      if (merged.stat.samples == 0) {
        merged.stat.min = cell.min;
        merged.stat.max = cell.max;
      } else {
        merged.stat.min = std::min(merged.stat.min, cell.min);
        merged.stat.max = std::max(merged.stat.max, cell.max);
      }
      merged.stat.sum += cell.sum;
      merged.stat.samples += cell.samples;
      if (cell.last_seq >= merged.last_seq) {
        merged.last_seq = cell.last_seq;
        merged.stat.last = cell.last;
      }
    }
    for (const ThreadState::SpanAgg& agg : s->span_aggs) {
      const std::string name = agg.name;
      const auto [it, inserted] = span_rows.try_emplace(name,
                                                        snap.spans.size());
      if (inserted) {
        snap.spans.push_back(
            {name, agg.count, agg.total_ns, agg.min_ns, agg.max_ns});
      } else {
        SpanStat& row = snap.spans[it->second];
        row.count += agg.count;
        row.total_ns += agg.total_ns;
        row.min_ns = std::min(row.min_ns, agg.min_ns);
        row.max_ns = std::max(row.max_ns, agg.max_ns);
      }
    }
    for (const ThreadState::Event& event : s->events) {
      snap.events.push_back(
          {event.name, s->tid, event.start_ns, event.dur_ns, event.arg});
    }
    snap.events_dropped += s->events_dropped;
  }

  for (std::size_t i = 0; i < counter_totals.size(); ++i) {
    if (counter_totals[i] == 0) continue;
    snap.counters.push_back({reg.counter_names[i], counter_totals[i]});
  }
  for (std::size_t i = 0; i < gauge_totals.size(); ++i) {
    if (gauge_totals[i].stat.samples == 0) continue;
    GaugeStat stat = gauge_totals[i].stat;
    stat.name = reg.gauge_names[i];
    snap.gauges.push_back(std::move(stat));
  }

  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.spans.begin(), snap.spans.end(), by_name);
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.events.begin(), snap.events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.tid != b.tid ? a.tid < b.tid
                                    : a.start_ns < b.start_ns;
            });
  return snap;
}

std::string stats_table() {
  const Snapshot snap = snapshot();
  std::ostringstream out;
  out << "=== psph_obs stats ===\n";
  if (!snap.spans.empty()) {
    out << "span                                          count      total"
           "        avg        max\n";
    for (const SpanStat& s : snap.spans) {
      char line[160];
      const std::uint64_t avg = s.count == 0 ? 0 : s.total_ns / s.count;
      std::snprintf(line, sizeof(line), "  %-42s %7llu %10s %10s %10s\n",
                    s.name.c_str(),
                    static_cast<unsigned long long>(s.count),
                    pretty_ns(s.total_ns).c_str(), pretty_ns(avg).c_str(),
                    pretty_ns(s.max_ns).c_str());
      out << line;
    }
  }
  if (!snap.counters.empty()) {
    out << "counter                                       value\n";
    for (const CounterStat& c : snap.counters) {
      char line[160];
      std::snprintf(line, sizeof(line), "  %-42s %7llu\n", c.name.c_str(),
                    static_cast<unsigned long long>(c.value));
      out << line;
    }
  }
  if (!snap.gauges.empty()) {
    out << "gauge                                          last        min"
           "        max        avg\n";
    for (const GaugeStat& g : snap.gauges) {
      char line[200];
      const double avg =
          g.samples == 0 ? 0.0 : g.sum / static_cast<double>(g.samples);
      std::snprintf(line, sizeof(line),
                    "  %-42s %9.3g %10.3g %10.3g %10.3g\n", g.name.c_str(),
                    g.last, g.min, g.max, avg);
      out << line;
    }
  }
  if (snap.events_dropped != 0) {
    out << "(" << snap.events_dropped
        << " trace events dropped past the per-thread cap)\n";
  }
  if (snap.spans.empty() && snap.counters.empty() && snap.gauges.empty()) {
    out << "(nothing recorded";
    if (!enabled()) out << "; instrumentation is disabled, see PSPH_OBS";
    out << ")\n";
  }
  return out.str();
}

std::string trace_json() {
  const Snapshot snap = snapshot();
  std::ostringstream out;
  out << "{\"traceEvents\":[\n";
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"psph\"}}";

  int max_tid = -1;
  for (const TraceEvent& e : snap.events) max_tid = std::max(max_tid, e.tid);
  for (int tid = 0; tid <= max_tid; ++tid) {
    out << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
        << tid << ",\"args\":{\"name\":\""
        << (tid == 0 ? std::string("main") :
                       "thread-" + std::to_string(tid))
        << "\"}}";
  }

  char num[64];
  for (const TraceEvent& e : snap.events) {
    out << ",\n{\"name\":\"" << json_escape(e.name)
        << "\",\"cat\":\"psph\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid;
    std::snprintf(num, sizeof(num), ",\"ts\":%.3f,\"dur\":%.3f",
                  static_cast<double>(e.start_ns) / 1e3,
                  static_cast<double>(e.dur_ns) / 1e3);
    out << num;
    if (e.arg != SpanTimer::kNoArg) {
      out << ",\"args\":{\"v\":" << e.arg << "}";
    }
    out << "}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out.str();
}

bool write_trace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = trace_json();
  const bool wrote =
      std::fwrite(json.data(), 1, json.size(), f) == json.size();
  const bool closed = std::fclose(f) == 0;
  return wrote && closed;
}

}  // namespace psph::obs
