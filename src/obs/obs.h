#pragma once

// psph_obs: low-overhead instrumentation for the hot paths (DESIGN §5.12).
//
// Three primitives, all safe to call from any thread:
//
//   * SpanTimer — RAII scoped timer. Each completed span is aggregated
//     per name (count / total / min / max) and, up to a per-thread event
//     cap, recorded as a timeline event for the Chrome trace.
//   * Counter   — monotonic 64-bit counter, summed across threads.
//   * Gauge     — sampled value; the snapshot reports last / min / max /
//     mean across all samples from all threads.
//
// Recording is per-thread with no locks or atomics on the hot path: every
// thread writes only its own cells, so totals are exact and deterministic
// once the writing threads have quiesced (joined, or drained through the
// util::ThreadPool barrier). snapshot()/stats_table()/trace_json() merge
// the per-thread state; call them only from quiescent points (end of a
// bench, after a pool run returns) — they are readers of other threads'
// cells, not synchronization.
//
// The layer is runtime-gated: PSPH_OBS=0 in the environment (or
// set_enabled(false)) turns every primitive into a single relaxed load and
// branch — no clock reads, no TLS growth, nothing recorded. The perf
// acceptance bar is that a PSPH_OBS=0 run is indistinguishable from an
// uninstrumented build (see BM_ObsSpanDisabled in bench/perf_complexes).
//
// Names must be string literals (or otherwise outlive the process): the
// recorder stores the pointer, not a copy. Aggregation is by string value
// at snapshot time, so the same name used from different translation units
// folds into one row.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace psph::obs {

namespace detail {
// -1 = not yet resolved from the PSPH_OBS environment variable.
extern std::atomic<int> g_enabled;
int resolve_enabled();
std::uint64_t now_ns();
void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t end_ns, std::int64_t arg);
}  // namespace detail

/// True when instrumentation records. Resolved once from PSPH_OBS
/// (anything except "0" — including unset — enables) unless overridden by
/// set_enabled(). The fast path is one relaxed atomic load.
inline bool enabled() {
  const int e = detail::g_enabled.load(std::memory_order_relaxed);
  return e >= 0 ? e != 0 : detail::resolve_enabled() != 0;
}

/// Overrides the environment resolution (tests, tools).
void set_enabled(bool on);

/// Drops every recorded span, event, counter value, and gauge sample.
/// Counter/Gauge registrations survive. Call only while writers are
/// quiescent.
void reset();

/// Caps timeline events recorded per thread (aggregates are never capped);
/// excess spans still count in the stats table but are dropped from the
/// trace and tallied in the "obs.events_dropped" counter. Default 1<<20.
/// Test hook; applies to events recorded after the call.
void set_event_capacity(std::size_t cap);

/// Monotonic counter. Cheap enough for per-item hot loops: one branch plus
/// a TLS array add when enabled. Typically declared as a namespace-scope
/// or function-local static.
class Counter {
 public:
  explicit Counter(const char* name);
  void add(std::uint64_t delta = 1);
  const char* name() const { return name_; }

 private:
  const char* name_;
  std::size_t id_;
};

/// Sampled value (queue depths, hit rates, sizes). The merged "last" is
/// the globally most recent sample, ordered by a process-wide sequence.
class Gauge {
 public:
  explicit Gauge(const char* name);
  void set(double value);
  const char* name() const { return name_; }

 private:
  const char* name_;
  std::size_t id_;
};

/// RAII scoped timer. `arg` is an optional small integer rendered into the
/// trace event's args (e.g. the homology dimension a span covers).
class SpanTimer {
 public:
  static constexpr std::int64_t kNoArg = INT64_MIN;

  explicit SpanTimer(const char* name, std::int64_t arg = kNoArg)
      : name_(name), arg_(arg) {
    start_ns_ = enabled() ? detail::now_ns() : kInactive;
  }
  ~SpanTimer() {
    if (start_ns_ != kInactive) {
      detail::record_span(name_, start_ns_, detail::now_ns(), arg_);
    }
  }

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

 private:
  static constexpr std::uint64_t kInactive = UINT64_MAX;
  const char* name_;
  std::int64_t arg_;
  std::uint64_t start_ns_;
};

// ---------------------------------------------------------------- flush --

struct SpanStat {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
};

struct CounterStat {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeStat {
  std::string name;
  double last = 0.0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  std::uint64_t samples = 0;
};

struct TraceEvent {
  std::string name;
  int tid = 0;             // registration order of the recording thread
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::int64_t arg = SpanTimer::kNoArg;
};

/// Everything recorded so far, merged across threads. Rows sorted by name;
/// events sorted by (tid, start). Zero-count rows are omitted.
struct Snapshot {
  std::vector<SpanStat> spans;
  std::vector<CounterStat> counters;
  std::vector<GaugeStat> gauges;
  std::vector<TraceEvent> events;
  std::uint64_t events_dropped = 0;
};

Snapshot snapshot();

/// Human-readable aggregate table ("--stats" output).
std::string stats_table();

/// Chrome trace_event JSON ({"traceEvents":[...]}), loadable in
/// chrome://tracing and Perfetto. Complete ("ph":"X") events with
/// microsecond timestamps, one tid per recording thread, plus thread-name
/// metadata.
std::string trace_json();

/// Writes trace_json() to `path`; false (with errno intact) on I/O error.
bool write_trace(const std::string& path);

}  // namespace psph::obs
