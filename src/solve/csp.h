#pragma once

// Compilation of a decision-map question into a dense CSP (DESIGN §5.17).
//
// "Does a k-set-agreement decision map exist on this protocol complex?" is
// a finite constraint problem: one variable per protocol vertex, the
// variable's domain the inputs visible in its view (validity), and one
// at-most-k-distinct-values constraint per facet (agreement). The seed
// backtracker (core/decision_search.cpp) re-derives this structure at every
// search node; the solvability engine compiles it once into flat arrays the
// propagator can update incrementally:
//
//   * values are dense-indexed (0..num_values-1) so a domain is one 64-bit
//     mask — the engine supports up to 64 distinct decision values, far
//     above what any k-set-agreement instance reaches (k+1 inputs);
//   * facets and vertex->facet adjacency are index vectors;
//   * the input symmetry group (core/orbit) is lowered to dense vertex and
//     value permutations, pre-validated to map the protocol complex onto
//     itself, so nogood canonicalization in the engine is pure table
//     lookups — no interning, safe from any thread.
//
// The same module owns the engine-independent witness checker the
// differential tests and the decide layer's final defence both use: a
// claimed decision map is verified vertex-by-vertex (validity) and
// facet-by-facet (agreement) against the original complex, never against
// engine state.

#include <cstdint>
#include <string>
#include <vector>

#include "core/orbit.h"
#include "core/view.h"
#include "topology/arena.h"
#include "topology/complex.h"

namespace psph::solve {

/// Hard cap on distinct decision values: a domain is one std::uint64_t.
inline constexpr int kMaxValues = 64;

struct CspProblem {
  int k = 1;
  int num_values = 0;
  /// Dense value index -> original decision value, sorted ascending (so
  /// "ascending dense index" is "ascending value" — lex-min witnesses are
  /// lex-min in the original values too).
  std::vector<std::int64_t> value_of;
  /// Dense vertex index -> protocol-complex vertex id.
  std::vector<topology::VertexId> vertex_ids;
  /// Root validity domain per dense vertex (bit i = value_of[i] allowed).
  std::vector<std::uint64_t> domains;
  /// Facet -> member dense vertex indices (each facet of the complex).
  std::vector<std::vector<int>> facets;
  /// Dense vertex -> indices of facets containing it.
  std::vector<std::vector<int>> facets_of;

  /// Usable symmetry elements lowered to dense permutations. Element 0 is
  /// always the identity; elements whose vertex image leaves the complex or
  /// whose value map does not permute the dense value set are dropped at
  /// compile time (they cannot arise for inputs the constructions build,
  /// but the engine must never relabel through an unverified map).
  std::vector<std::vector<int>> sym_vertex;  // g -> dense vertex permutation
  std::vector<std::vector<int>> sym_value;   // g -> dense value permutation

  std::size_t group_order() const { return sym_vertex.size(); }
};

/// Compiles the decision-map CSP for `protocol` under k-set agreement.
/// `symmetry`, when non-null, is lowered through an OrbitContext bound to
/// (views, arena) — the same registry the complex was built in, so relabeled
/// views intern to their existing ids.
CspProblem compile_csp(const topology::SimplicialComplex& protocol, int k,
                       core::ViewRegistry& views,
                       topology::VertexArena& arena,
                       const core::SymmetryGroup* symmetry = nullptr);

struct WitnessCheck {
  bool ok = true;
  std::string reason;  // human-readable defect when !ok
};

/// Verifies a dense assignment (value index per vertex) against the
/// compiled problem: every vertex inside its validity domain, every facet
/// carrying at most k distinct values. Independent of any engine state.
WitnessCheck verify_witness(const CspProblem& problem,
                            const std::vector<int>& assignment);

}  // namespace psph::solve
