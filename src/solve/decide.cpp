#include "solve/decide.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/async_complex.h"
#include "core/construction.h"
#include "core/iis_complex.h"
#include "core/orbit.h"
#include "core/pseudosphere.h"
#include "core/semisync_complex.h"
#include "core/sync_complex.h"
#include "obs/obs.h"

namespace psph::solve {

namespace {

obs::Counter g_decides("solve.decides");
obs::Counter g_decide_hits("solve.decide_cache_hits");

std::vector<std::int64_t> value_range(int count) {
  std::vector<std::int64_t> values;
  for (int v = 0; v < count; ++v) values.push_back(v);
  return values;
}

void validate(const DecideRequest& request) {
  if (request.processes < 1) {
    throw std::invalid_argument("decide: processes must be >= 1");
  }
  if (request.k < 1) throw std::invalid_argument("decide: k must be >= 1");
  if (request.rounds < 1) {
    throw std::invalid_argument("decide: rounds must be >= 1");
  }
  if (request.f < 0 || request.mu < 0) {
    throw std::invalid_argument("decide: f and mu must be >= 0");
  }
  if (request.k + 1 > kMaxValues) {
    throw std::invalid_argument("decide: k exceeds the engine's value cap");
  }
}

store::DecisionRecord make_record(const DecideRequest& request) {
  store::DecisionRecord record;
  record.engine_version = kDecisionEngineVersion;
  record.model = model_name(request.model);
  record.processes = request.processes;
  record.f = request.f;
  record.k = request.k;
  record.mu = request.mu;
  record.rounds = request.rounds;
  return record;
}

bool record_matches(const store::DecisionRecord& record,
                    const DecideRequest& request) {
  return record.engine_version == kDecisionEngineVersion &&
         record.model == model_name(request.model) &&
         record.processes == request.processes && record.f == request.f &&
         record.k == request.k && record.mu == request.mu &&
         record.rounds == request.rounds;
}

}  // namespace

const char* model_name(Model model) {
  switch (model) {
    case Model::kAsync: return "async";
    case Model::kSync: return "sync";
    case Model::kSemiSync: return "semisync";
    case Model::kIis: return "iis";
  }
  return "?";
}

std::optional<Model> parse_model(std::string_view name) {
  if (name == "async") return Model::kAsync;
  if (name == "sync") return Model::kSync;
  if (name == "semisync") return Model::kSemiSync;
  if (name == "iis") return Model::kIis;
  return std::nullopt;
}

DecideRequest normalize(DecideRequest request) {
  if (request.model != Model::kSemiSync) request.mu = 0;
  if (request.model == Model::kIis) request.f = 0;
  return request;
}

store::CacheKeyBuilder decide_cache_key(const DecideRequest& request) {
  store::CacheKeyBuilder key("decide");
  key.param(kDecisionEngineVersion);
  key.param_string(model_name(request.model));
  key.param(request.processes)
      .param(request.f)
      .param(request.k)
      .param(request.mu)
      .param(request.rounds);
  return key;
}

std::unique_ptr<Instance> build_instance(const DecideRequest& raw,
                                         bool with_symmetry) {
  const DecideRequest request = normalize(raw);
  validate(request);
  auto instance = std::make_unique<Instance>();
  core::ViewRegistry& views = instance->views;
  topology::VertexArena& arena = instance->arena;
  const topology::SimplicialComplex inputs = core::input_complex(
      request.processes, value_range(request.k + 1), views, arena);
  switch (request.model) {
    case Model::kAsync:
      instance->protocol = core::async_protocol_complex_over(
          inputs, {request.processes, request.f, request.rounds}, views,
          arena);
      break;
    case Model::kSync:
      instance->protocol = core::sync_protocol_complex_over(
          inputs, {request.processes, request.f, request.k, request.rounds},
          views, arena);
      break;
    case Model::kSemiSync:
      instance->protocol = core::semisync_protocol_complex_over(
          inputs,
          {request.processes, request.f, request.k, request.mu,
           request.rounds},
          views, arena);
      break;
    case Model::kIis:
      instance->protocol = core::iis_protocol_complex_over(
          inputs, request.rounds, views, arena);
      break;
  }
  if (with_symmetry) {
    const core::SymmetryGroup symmetry =
        core::SymmetryGroup::for_input_complex(inputs, views, arena);
    instance->problem = compile_csp(instance->protocol, request.k, views,
                                    arena, &symmetry);
  } else {
    instance->problem =
        compile_csp(instance->protocol, request.k, views, arena);
  }
  return instance;
}

DecideResult decide(const DecideRequest& raw, const EngineOptions& options,
                    store::ResultStore* store) {
  const DecideRequest request = normalize(raw);
  validate(request);
  g_decides.add();

  if (store != nullptr) {
    const store::CacheKeyBuilder key = decide_cache_key(request);
    if (const auto bytes = store->load(key)) {
      try {
        store::DecisionRecord record = store::deserialize_decision(*bytes);
        if (record_matches(record, request)) {
          g_decide_hits.add();
          DecideResult result;
          result.record = std::move(record);
          result.cache_hit = true;
          return result;
        }
      } catch (const store::SerializationError&) {
        // Fall through to recompute; the store already counted the entry
        // as corrupt on a checksum failure, and a decodable-but-mismatched
        // record must never satisfy this query.
      }
    }
  }

  const std::unique_ptr<Instance> instance =
      build_instance(request, /*with_symmetry=*/true);
  const SolveOutcome outcome = solve(instance->problem, options);

  DecideResult result;
  result.stats = outcome.stats;
  result.record = make_record(request);
  result.record.protocol_facets = instance->problem.facets.size();
  result.record.protocol_vertices = instance->problem.vertex_ids.size();
  result.record.exhausted = outcome.exhausted;
  result.record.solvable = outcome.exhausted && outcome.solvable;
  if (result.record.solvable) {
    const WitnessCheck check =
        verify_witness(instance->problem, outcome.witness);
    if (!check.ok) {
      throw std::logic_error("decide: engine witness failed verification: " +
                             check.reason);
    }
    const CspProblem& problem = instance->problem;
    result.record.witness.reserve(outcome.witness.size());
    for (std::size_t i = 0; i < outcome.witness.size(); ++i) {
      result.record.witness.emplace_back(
          static_cast<std::uint64_t>(problem.vertex_ids[i]),
          problem.value_of[static_cast<std::size_t>(outcome.witness[i])]);
    }
    std::sort(result.record.witness.begin(), result.record.witness.end());
  }

  if (store != nullptr && result.record.exhausted) {
    store->save(decide_cache_key(request),
                store::serialize_decision(result.record));
  }
  return result;
}

std::vector<std::uint8_t> decide_sealed(const DecideRequest& request,
                                        const EngineOptions& options,
                                        store::ResultStore* store) {
  return store::serialize_decision(decide(request, options, store).record);
}

store::DecisionRecord decide_seq(const DecideRequest& raw,
                                 const core::SearchOptions& options) {
  const DecideRequest request = normalize(raw);
  validate(request);
  const std::unique_ptr<Instance> instance =
      build_instance(request, /*with_symmetry=*/false);
  const core::SearchResult result = core::search_decision_map_seq(
      instance->protocol, request.k, instance->views, instance->arena,
      options);
  store::DecisionRecord record = make_record(request);
  record.protocol_facets = instance->problem.facets.size();
  record.protocol_vertices = instance->problem.vertex_ids.size();
  record.exhausted = result.exhausted;
  record.solvable = result.exhausted && result.decidable;
  if (record.solvable) {
    record.witness.reserve(result.assignment.size());
    for (const auto& [vertex, value] : result.assignment) {
      record.witness.emplace_back(static_cast<std::uint64_t>(vertex), value);
    }
    std::sort(record.witness.begin(), record.witness.end());
  }
  return record;
}

}  // namespace psph::solve
