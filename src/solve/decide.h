#pragma once

// End-to-end solvability queries (DESIGN §5.17): "can (model, n+1, f, k,
// mu, r) solve k-set agreement?" This layer builds the protocol complex,
// compiles it into a CSP (csp.h), runs the engine (engine.h), verifies any
// witness against the original complex, and memoizes the decided verdict
// in a ResultStore as a sealed kDecision record — so parameter sweeps and
// psph_serve's decide path never re-decide an instance the store has seen.
//
// Only *exhausted* verdicts are cached (a node-limited abort is not a
// fact about the instance), and a cached record is re-validated against
// the request's parameters on load: a corrupted or aliased entry degrades
// to a miss plus recomputation, never a wrong answer.
//
// decide_seq() is the seed backtracker (core/decision_search) run on the
// identical complex — the oracle the differential suite compares every
// engine stage against.

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "core/decision_search.h"
#include "core/view.h"
#include "solve/csp.h"
#include "solve/engine.h"
#include "store/serialize.h"
#include "store/store.h"
#include "topology/arena.h"
#include "topology/complex.h"

namespace psph::solve {

/// Bumped when the engine's decided semantics change (e.g. a different
/// canonical witness order); part of the cache key, so stale records from
/// an older engine can never satisfy a new query.
inline constexpr std::uint32_t kDecisionEngineVersion = 1;

enum class Model { kAsync, kSync, kSemiSync, kIis };

const char* model_name(Model model);
std::optional<Model> parse_model(std::string_view name);

struct DecideRequest {
  Model model = Model::kAsync;
  int processes = 3;  ///< n+1
  int f = 1;          ///< failure budget (ignored by iis)
  int k = 1;          ///< k-set agreement
  int mu = 0;         ///< semisync synchrony bound (ignored elsewhere)
  int rounds = 1;
};

/// Canonical form: parameters the model ignores are zeroed so equivalent
/// requests share one cache entry.
DecideRequest normalize(DecideRequest request);

/// The cache key for a normalized request (format version, "decide",
/// engine version, model, parameters).
store::CacheKeyBuilder decide_cache_key(const DecideRequest& request);

/// A built instance: the protocol complex plus its compiled CSP, with the
/// registries that own the vertex views. Tests use this to replay learned
/// nogoods and verify witnesses against the same structures the engine saw.
struct Instance {
  core::ViewRegistry views;
  topology::VertexArena arena;
  topology::SimplicialComplex protocol;
  CspProblem problem;
};

/// Builds the protocol complex for `request` and compiles it; when
/// `with_symmetry` is set the input complex's symmetry group is lowered
/// into the problem (decide() always does).
std::unique_ptr<Instance> build_instance(const DecideRequest& request,
                                         bool with_symmetry = true);

struct DecideResult {
  store::DecisionRecord record;
  /// Engine statistics; all zeros on a pure cache hit.
  EngineStats stats;
  bool cache_hit = false;
};

/// Decides the instance, store-first when `store` is non-null. A hit costs
/// one load — no complex is built. On compute, the witness (when solvable)
/// is independently re-verified against the protocol complex before the
/// record is returned or cached.
DecideResult decide(const DecideRequest& request,
                    const EngineOptions& options = {},
                    store::ResultStore* store = nullptr);

/// The decided record as a sealed kDecision envelope (what serve renders
/// and sweeps archive). Deterministic bytes for a deterministic record.
std::vector<std::uint8_t> decide_sealed(const DecideRequest& request,
                                        const EngineOptions& options = {},
                                        store::ResultStore* store = nullptr);

/// Seed-backtracker oracle on the identical protocol complex. Exhaustive
/// up to `options.node_limit`; the witness is the backtracker's first find
/// (NOT canonical — compare verdicts and validity, not bytes).
store::DecisionRecord decide_seq(const DecideRequest& request,
                                 const core::SearchOptions& options = {});

}  // namespace psph::solve
