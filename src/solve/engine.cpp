#include "solve/engine.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <unordered_set>

#include "obs/obs.h"
#include "util/cancel.h"
#include "util/parallel.h"
#include "util/random.h"

namespace psph::solve {

namespace {

obs::Counter g_nodes("solve.nodes");
obs::Counter g_propagations("solve.propagations");
obs::Counter g_learned("solve.learned_nogoods");
obs::Counter g_nogood_hits("solve.nogood_hits");
obs::Counter g_probes("solve.probes");
obs::Gauge g_winner("solve.portfolio_winner");

constexpr int kDefaultPortfolioWidth = 8;

/// Per-worker diversification: the order values are tried in and the
/// static tie-break priority per vertex. Worker 0 is the canonical
/// deterministic configuration (ascending values, index tie-breaks).
struct WorkerConfig {
  std::vector<int> value_order;
  std::vector<std::uint64_t> vertex_priority;
  bool learning = true;
};

WorkerConfig make_config(const CspProblem& p, int worker, bool learning,
                         std::uint64_t seed) {
  WorkerConfig cfg;
  cfg.learning = learning;
  cfg.value_order.resize(static_cast<std::size_t>(p.num_values));
  for (int i = 0; i < p.num_values; ++i) {
    cfg.value_order[static_cast<std::size_t>(i)] = i;
  }
  cfg.vertex_priority.assign(p.vertex_ids.size(), 0);
  if (worker > 0) {
    util::Rng rng(seed + 0x9e3779b97f4a7c15ULL *
                             static_cast<std::uint64_t>(worker));
    rng.shuffle(cfg.value_order);
    for (std::uint64_t& priority : cfg.vertex_priority) {
      priority = rng.next();
    }
  }
  return cfg;
}

std::uint64_t hash_lits(const std::vector<Lit>& lits) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const Lit& lit : lits) {
    h = (h ^ static_cast<std::uint64_t>(lit.vertex)) * 1099511628211ULL;
    h = (h ^ static_cast<std::uint64_t>(lit.value)) * 1099511628211ULL;
  }
  return h;
}

enum Verdict { kAborted = -1, kUnsat = 0, kSat = 1 };

/// One complete propagate/learn search worker over a compiled problem.
/// Holds all mutable search state; solve_under() may be called repeatedly
/// (the lex-min witness extraction does), with only the learned-nogood
/// database persisting between calls.
class Searcher {
 public:
  Searcher(const CspProblem& p, WorkerConfig cfg, const EngineOptions& opt)
      : p_(p),
        cfg_(std::move(cfg)),
        opt_(opt),
        vertex_count_(static_cast<int>(p.vertex_ids.size())),
        domain_(p.domains),
        value_(p.vertex_ids.size(), -1),
        assigned_(p.vertex_ids.size(), 0),
        is_decision_(p.vertex_ids.size(), 0),
        removal_reasons_(p.vertex_ids.size()),
        facet_distinct_(p.facets.size(), 0),
        facet_present_(p.facets.size(), 0),
        watchers_(p.vertex_ids.size() *
                  static_cast<std::size_t>(p.num_values)),
        processed_(p.vertex_ids.size(), 0) {
    facet_count_.reserve(p.facets.size());
    for (std::size_t f = 0; f < p.facets.size(); ++f) {
      facet_count_.emplace_back(static_cast<std::size_t>(p.num_values), 0);
    }
  }

  EngineStats stats;
  std::vector<std::vector<Lit>> learned_originals;

  /// Runs the search under forced assumptions. `probe` enables root
  /// failed-literal probing (primary calls only; the completion oracle
  /// skips it). On kSat, *witness holds a dense value per vertex.
  Verdict solve_under(const std::vector<Lit>& assumptions, bool probe,
                      std::vector<int>* witness) {
    reset();
    aborted_ = false;
    // Root singletons/wipeouts (a vertex whose validity domain is already
    // one value — or none, which refutes the instance outright).
    for (int v = 0; v < vertex_count_; ++v) {
      const std::uint64_t mask = domain_[static_cast<std::size_t>(v)];
      if (mask == 0) return kUnsat;
      if (std::popcount(mask) == 1 && !assigned_[static_cast<std::size_t>(v)]) {
        assign(v, std::countr_zero(mask), /*decision=*/false);
      }
    }
    if (!flush_propagation()) return unwind_unsat();
    for (const Lit& a : assumptions) {
      if (assigned_[static_cast<std::size_t>(a.vertex)]) {
        if (value_[static_cast<std::size_t>(a.vertex)] != a.value) {
          return unwind_unsat();
        }
        continue;
      }
      if ((domain_[static_cast<std::size_t>(a.vertex)] &
           (std::uint64_t{1} << a.value)) == 0) {
        return unwind_unsat();
      }
      push_level();
      assign(a.vertex, a.value, /*decision=*/true);
      if (!flush_propagation()) return unwind_unsat();
    }
    if (probe && opt_.root_probing && !probe_root()) return unwind_unsat();
    const Verdict verdict = search(witness);
    if (verdict == kAborted) aborted_ = true;
    return verdict;
  }

  bool aborted() const { return aborted_; }

 private:
  // ---- state ----

  struct TrailEvent {
    int vertex = 0;
    bool is_assign = false;
    std::uint64_t old_domain = 0;  // removal events only
  };

  struct Nogood {
    std::vector<Lit> lits;  // sorted
    int w0 = 0, w1 = 0;     // watched positions
  };

  struct Conflict {
    enum class Kind { kNone, kWipeout, kOverflow, kNogood } kind = Kind::kNone;
    int vertex = -1;  // kWipeout
    int facet = -1;   // kOverflow
    int nogood = -1;  // kNogood
  };

  const CspProblem& p_;
  WorkerConfig cfg_;
  const EngineOptions& opt_;
  int vertex_count_;

  std::vector<std::uint64_t> domain_;
  std::vector<int> value_;
  std::vector<signed char> assigned_;
  std::vector<signed char> is_decision_;
  /// Active domain-removal antecedent sets per vertex, pushed on shrink,
  /// popped by undo (global trail order preserves per-vertex order).
  std::vector<std::vector<std::vector<Lit>>> removal_reasons_;

  std::vector<std::vector<std::uint16_t>> facet_count_;
  std::vector<int> facet_distinct_;
  std::vector<std::uint64_t> facet_present_;

  std::vector<TrailEvent> trail_;
  std::vector<std::size_t> level_marks_;
  std::vector<int> queue_;  // assigned vertices pending facet/nogood updates
  std::size_t queue_head_ = 0;

  std::vector<Nogood> db_;
  std::vector<std::vector<int>> watchers_;  // literal id -> nogood indices
  std::unordered_set<std::uint64_t> installed_;
  std::unordered_set<std::uint64_t> canonical_seen_;

  Conflict conflict_;
  bool aborted_ = false;

  // ---- small helpers ----

  std::size_t lit_id(int vertex, int value) const {
    return static_cast<std::size_t>(vertex) *
               static_cast<std::size_t>(p_.num_values) +
           static_cast<std::size_t>(value);
  }
  bool lit_true(const Lit& l) const {
    return assigned_[static_cast<std::size_t>(l.vertex)] != 0 &&
           value_[static_cast<std::size_t>(l.vertex)] == l.value;
  }
  bool lit_false(const Lit& l) const {
    return assigned_[static_cast<std::size_t>(l.vertex)] != 0 &&
           value_[static_cast<std::size_t>(l.vertex)] != l.value;
  }

  void push_level() { level_marks_.push_back(trail_.size()); }

  void assign(int vertex, int value, bool decision) {
    value_[static_cast<std::size_t>(vertex)] = value;
    assigned_[static_cast<std::size_t>(vertex)] = 1;
    is_decision_[static_cast<std::size_t>(vertex)] =
        decision ? 1 : 0;
    trail_.push_back({vertex, /*is_assign=*/true, 0});
    queue_.push_back(vertex);
  }

  void undo_level() {
    const std::size_t mark = level_marks_.back();
    level_marks_.pop_back();
    while (trail_.size() > mark) {
      const TrailEvent event = trail_.back();
      trail_.pop_back();
      const auto v = static_cast<std::size_t>(event.vertex);
      if (event.is_assign) {
        if (processed_[v]) {
          retract_facets(event.vertex, value_[v]);
          processed_[v] = 0;
        }
        assigned_[v] = 0;
        is_decision_[v] = 0;
        value_[v] = -1;
      } else {
        domain_[v] = event.old_domain;
        removal_reasons_[v].pop_back();
      }
    }
    queue_.clear();
    queue_head_ = 0;
    conflict_ = Conflict{};
  }

  Verdict unwind_unsat() {
    while (!level_marks_.empty()) undo_level();
    return kUnsat;
  }

  void reset() {
    while (!level_marks_.empty()) undo_level();
    // Undo any level-0 events (root singletons, probe prunes) so repeated
    // solve_under calls start from the pristine problem; the nogood
    // database carries the learning across calls instead.
    level_marks_.push_back(0);
    undo_level();
  }

  std::vector<signed char> processed_;  // facet counters applied for vertex

  /// Applies `vertex = value` to every incident facet's counters. All
  /// counter increments complete even on conflict so retract_facets stays
  /// exactly symmetric; saturation shrinks run afterwards (each shrink is
  /// individually trail-recorded, so a mid-loop wipeout undoes cleanly).
  void apply_facets(int vertex, int value, Conflict* out) {
    std::vector<int> newly_saturated;
    for (int f : p_.facets_of[static_cast<std::size_t>(vertex)]) {
      const auto fs = static_cast<std::size_t>(f);
      const std::uint16_t count =
          ++facet_count_[fs][static_cast<std::size_t>(value)];
      if (count != 1) continue;
      facet_present_[fs] |= std::uint64_t{1} << value;
      const int distinct = ++facet_distinct_[fs];
      if (distinct > p_.k && out->kind == Conflict::Kind::kNone) {
        out->kind = Conflict::Kind::kOverflow;
        out->facet = f;
      } else if (distinct == p_.k) {
        newly_saturated.push_back(f);
      }
    }
    if (out->kind != Conflict::Kind::kNone) return;
    for (int f : newly_saturated) {
      if (!saturate(f, out)) return;
    }
  }

  void retract_facets(int vertex, int value) {
    for (int f : p_.facets_of[static_cast<std::size_t>(vertex)]) {
      const auto fs = static_cast<std::size_t>(f);
      const std::uint16_t count =
          --facet_count_[fs][static_cast<std::size_t>(value)];
      if (count == 0) {
        facet_present_[fs] &= ~(std::uint64_t{1} << value);
        --facet_distinct_[fs];
      }
    }
  }

  /// Facet `f` carries k distinct values: every unassigned member must
  /// reuse one. Antecedents: one assigned (vertex, value) per present
  /// value — the minimal saturated-facet support.
  bool saturate(int f, Conflict* out) {
    const auto fs = static_cast<std::size_t>(f);
    std::vector<Lit> support;
    support.reserve(static_cast<std::size_t>(p_.k));
    std::uint64_t covered = 0;
    for (int u : p_.facets[fs]) {
      const auto us = static_cast<std::size_t>(u);
      if (!assigned_[us]) continue;
      const std::uint64_t bit = std::uint64_t{1} << value_[us];
      if ((covered & bit) != 0) continue;
      covered |= bit;
      support.push_back({u, value_[us]});
    }
    const std::uint64_t present = facet_present_[fs];
    for (int u : p_.facets[fs]) {
      const auto us = static_cast<std::size_t>(u);
      if (assigned_[us]) continue;
      if (!shrink(u, present, support, out)) return false;
    }
    return true;
  }

  /// Intersects vertex `u`'s domain with `allowed`; records the removal
  /// with its antecedents, cascades unit assignment, flags wipeout.
  bool shrink(int u, std::uint64_t allowed, const std::vector<Lit>& reason,
              Conflict* out) {
    const auto us = static_cast<std::size_t>(u);
    const std::uint64_t old = domain_[us];
    const std::uint64_t next = old & allowed;
    if (next == old) return true;
    trail_.push_back({u, /*is_assign=*/false, old});
    removal_reasons_[us].push_back(reason);
    domain_[us] = next;
    if (next == 0) {
      out->kind = Conflict::Kind::kWipeout;
      out->vertex = u;
      return false;
    }
    if (std::popcount(next) == 1 && !assigned_[us]) {
      assign(u, std::countr_zero(next), /*decision=*/false);
    }
    return true;
  }

  /// Drains the propagation queue (facet counters, saturation, nogood
  /// watches). Returns false and sets conflict_ on a dead end. Polls the
  /// cooperative deadline so a psph_serve budget fires mid-propagation.
  bool flush_propagation() {
    Conflict conflict;
    while (queue_head_ < queue_.size()) {
      const int vertex = queue_[queue_head_++];
      const auto vs = static_cast<std::size_t>(vertex);
      const int value = value_[vs];
      ++stats.propagations;
      if ((stats.propagations & 0x3F) == 0) util::poll_deadline();
      apply_facets(vertex, value, &conflict);
      processed_[vs] = 1;
      if (conflict.kind != Conflict::Kind::kNone) break;
      if (!db_.empty() && !propagate_nogoods(vertex, value, &conflict)) break;
    }
    if (conflict.kind == Conflict::Kind::kNone) return true;
    conflict_ = conflict;
    return false;
  }

  bool propagate_nogoods(int vertex, int value, Conflict* out) {
    std::vector<int>& list = watchers_[lit_id(vertex, value)];
    for (std::size_t i = 0; i < list.size();) {
      const int ni = list[i];
      Nogood& ng = db_[static_cast<std::size_t>(ni)];
      const Lit self{vertex, value};
      int self_watch;
      if (ng.lits[static_cast<std::size_t>(ng.w0)] == self) {
        self_watch = 0;
      } else if (ng.lits[static_cast<std::size_t>(ng.w1)] == self) {
        self_watch = 1;
      } else {
        // Stale entry from a moved watch; drop it.
        list[i] = list.back();
        list.pop_back();
        continue;
      }
      const int other_pos = self_watch == 0 ? ng.w1 : ng.w0;
      const Lit other = ng.lits[static_cast<std::size_t>(other_pos)];
      if (ng.w0 != ng.w1 && lit_false(other)) {
        // Nogood cannot complete while the other watch is false.
        ++i;
        continue;
      }
      // Try to move this watch to a not-true literal elsewhere.
      bool moved = false;
      for (std::size_t pos = 0; pos < ng.lits.size(); ++pos) {
        if (static_cast<int>(pos) == ng.w0 ||
            static_cast<int>(pos) == ng.w1) {
          continue;
        }
        if (!lit_true(ng.lits[pos])) {
          (self_watch == 0 ? ng.w0 : ng.w1) = static_cast<int>(pos);
          watchers_[lit_id(ng.lits[pos].vertex, ng.lits[pos].value)]
              .push_back(ni);
          list[i] = list.back();
          list.pop_back();
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Every non-watch literal is true, and so is this watch.
      if (ng.w0 == ng.w1 || lit_true(other)) {
        ++stats.nogood_hits;
        out->kind = Conflict::Kind::kNogood;
        out->nogood = ni;
        return false;
      }
      if (lit_false(other)) {
        ++i;
        continue;
      }
      // Force the last literal false: remove its value from its domain.
      ++stats.nogood_hits;
      std::vector<Lit> reason;
      reason.reserve(ng.lits.size() - 1);
      for (const Lit& l : ng.lits) {
        if (!(l == other)) reason.push_back(l);
      }
      if (!shrink(other.vertex, ~(std::uint64_t{1} << other.value), reason,
                  out)) {
        return false;
      }
      ++i;
    }
    return true;
  }

  // ---- conflict analysis ----

  /// Resolves the current conflict back through propagation reasons to the
  /// set of implicated *decisions* (assumptions count as decisions). An
  /// empty result means the conflict holds unconditionally: unsolvable.
  std::vector<Lit> analyze() {
    std::vector<Lit> frontier;
    switch (conflict_.kind) {
      case Conflict::Kind::kWipeout: {
        const auto vs = static_cast<std::size_t>(conflict_.vertex);
        for (const std::vector<Lit>& reason : removal_reasons_[vs]) {
          frontier.insert(frontier.end(), reason.begin(), reason.end());
        }
        break;
      }
      case Conflict::Kind::kOverflow: {
        const auto fs = static_cast<std::size_t>(conflict_.facet);
        std::uint64_t covered = 0;
        for (int u : p_.facets[fs]) {
          const auto us = static_cast<std::size_t>(u);
          if (!assigned_[us]) continue;
          const std::uint64_t bit = std::uint64_t{1} << value_[us];
          if ((covered & bit) != 0) continue;
          covered |= bit;
          frontier.push_back({u, value_[us]});
          if (std::popcount(covered) > p_.k) break;
        }
        break;
      }
      case Conflict::Kind::kNogood: {
        const Nogood& ng = db_[static_cast<std::size_t>(conflict_.nogood)];
        frontier = ng.lits;
        break;
      }
      case Conflict::Kind::kNone:
        break;
    }

    std::vector<signed char> visited(p_.vertex_ids.size(), 0);
    std::vector<Lit> decisions;
    while (!frontier.empty()) {
      const Lit lit = frontier.back();
      frontier.pop_back();
      const auto vs = static_cast<std::size_t>(lit.vertex);
      if (visited[vs]) continue;
      visited[vs] = 1;
      if (is_decision_[vs]) {
        decisions.push_back({lit.vertex, value_[vs]});
        continue;
      }
      // Propagated unit: implied by every removal that shaped its domain
      // down to a singleton.
      for (const std::vector<Lit>& reason : removal_reasons_[vs]) {
        frontier.insert(frontier.end(), reason.begin(), reason.end());
      }
    }
    std::sort(decisions.begin(), decisions.end());
    return decisions;
  }

  // ---- learning ----

  /// Installs `lits` (sorted) as a watched nogood, deduplicated.
  void install(std::vector<Lit> lits) {
    if (lits.empty() || db_.size() >= opt_.max_nogoods) return;
    const std::uint64_t h = hash_lits(lits);
    if (!installed_.insert(h).second) return;
    Nogood ng;
    ng.lits = std::move(lits);
    // Prefer not-true literals as watches so the nogood re-arms as the
    // search backtracks past its conflict level.
    int first = -1, second = -1;
    for (std::size_t pos = 0; pos < ng.lits.size(); ++pos) {
      if (!lit_true(ng.lits[pos])) {
        if (first < 0) {
          first = static_cast<int>(pos);
        } else if (second < 0) {
          second = static_cast<int>(pos);
          break;
        }
      }
    }
    if (first < 0) first = 0;
    if (second < 0) {
      second = ng.lits.size() > 1 ? (first == 0 ? 1 : 0) : first;
    }
    ng.w0 = first;
    ng.w1 = second;
    const int id = static_cast<int>(db_.size());
    watchers_[lit_id(ng.lits[static_cast<std::size_t>(ng.w0)].vertex,
                     ng.lits[static_cast<std::size_t>(ng.w0)].value)]
        .push_back(id);
    if (ng.w1 != ng.w0) {
      watchers_[lit_id(ng.lits[static_cast<std::size_t>(ng.w1)].vertex,
                       ng.lits[static_cast<std::size_t>(ng.w1)].value)]
          .push_back(id);
    }
    db_.push_back(std::move(ng));
  }

  /// Learns the conflict set: canonicalizes it under the symmetry group,
  /// counts one learned nogood per new canonical class, and instantiates
  /// the class's images so symmetric re-entries prune too.
  void learn(const std::vector<Lit>& decisions) {
    if (!cfg_.learning || decisions.empty()) return;
    // Canonical form: lex-min sorted image over the usable group elements.
    std::vector<Lit> canonical = decisions;
    std::vector<Lit> image(decisions.size());
    for (std::size_t g = 1; g < p_.group_order(); ++g) {
      relabel(decisions, g, &image);
      if (image < canonical) canonical = image;
    }
    if (!canonical_seen_.insert(hash_lits(canonical)).second) {
      // Class already learned; the triggering instance may still be new.
      install(decisions);
      return;
    }
    ++stats.learned_nogoods;
    g_learned.add();
    if (opt_.collect_nogoods) learned_originals.push_back(decisions);
    install(decisions);
    if (!opt_.symmetric_nogoods) return;
    const std::size_t cap =
        std::min(p_.group_order(), opt_.max_symmetric_images);
    for (std::size_t g = 1; g < cap; ++g) {
      relabel(decisions, g, &image);
      install(image);
    }
  }

  void relabel(const std::vector<Lit>& lits, std::size_t g,
               std::vector<Lit>* out) const {
    const std::vector<int>& vperm = p_.sym_vertex[g];
    const std::vector<int>& valperm = p_.sym_value[g];
    out->resize(lits.size());
    for (std::size_t i = 0; i < lits.size(); ++i) {
      (*out)[i] = {vperm[static_cast<std::size_t>(lits[i].vertex)],
                   valperm[static_cast<std::size_t>(lits[i].value)]};
    }
    std::sort(out->begin(), out->end());
  }

  // ---- probing ----

  /// Failed-literal probing at the root: tentatively assign each (vertex,
  /// value), propagate, and on conflict prune the value with the learned
  /// antecedents. Runs to fixpoint. Returns false if the root dies.
  bool probe_root() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (int v = 0; v < vertex_count_; ++v) {
        const auto vs = static_cast<std::size_t>(v);
        if (assigned_[vs]) continue;
        std::uint64_t mask = domain_[vs];
        while (mask != 0) {
          const int value = std::countr_zero(mask);
          mask &= mask - 1;
          util::poll_deadline();
          ++stats.probes;
          g_probes.add();
          push_level();
          assign(v, value, /*decision=*/true);
          if (flush_propagation()) {
            undo_level();
            continue;
          }
          ++stats.probe_failures;
          std::vector<Lit> decisions = analyze();
          undo_level();
          learn(decisions);
          // Antecedents of the pruning: the conflict set minus the probe.
          std::vector<Lit> reason;
          for (const Lit& lit : decisions) {
            if (!(lit == Lit{v, value})) reason.push_back(lit);
          }
          Conflict conflict;
          if (!shrink(v, ~(std::uint64_t{1} << value), reason, &conflict)) {
            conflict_ = conflict;
            return false;
          }
          if (!flush_propagation()) return false;
          changed = true;
          if (assigned_[vs]) break;
          mask &= domain_[vs];
        }
      }
    }
    return true;
  }

  // ---- search ----

  int pick_vertex() const {
    int best = -1;
    int best_size = 0;
    std::uint64_t best_priority = 0;
    for (int v = 0; v < vertex_count_; ++v) {
      const auto vs = static_cast<std::size_t>(v);
      if (assigned_[vs]) continue;
      const int size = std::popcount(domain_[vs]);
      const std::uint64_t priority = cfg_.vertex_priority[vs];
      const bool better =
          best < 0 || size < best_size ||
          (size == best_size &&
           (priority < best_priority ||
            (priority == best_priority &&
             p_.facets_of[vs].size() >
                 p_.facets_of[static_cast<std::size_t>(best)].size())));
      if (better) {
        best = v;
        best_size = size;
        best_priority = priority;
      }
    }
    return best;
  }

  Verdict search(std::vector<int>* witness) {
    if (opt_.node_limit != 0 && stats.nodes >= opt_.node_limit) {
      return kAborted;
    }
    ++stats.nodes;
    g_nodes.add();
    util::poll_deadline();

    const int v = pick_vertex();
    if (v < 0) {
      if (witness != nullptr) *witness = value_;
      return kSat;
    }
    const auto vs = static_cast<std::size_t>(v);
    for (int order_pos = 0; order_pos < p_.num_values; ++order_pos) {
      const int value = cfg_.value_order[static_cast<std::size_t>(order_pos)];
      if ((domain_[vs] & (std::uint64_t{1} << value)) == 0) continue;
      push_level();
      assign(v, value, /*decision=*/true);
      if (flush_propagation()) {
        const Verdict verdict = search(witness);
        undo_level();
        if (verdict != kUnsat) return verdict;
      } else {
        learn(analyze());
        undo_level();
      }
    }
    return kUnsat;
  }
};

void accumulate(EngineStats* total, const EngineStats& part) {
  total->nodes += part.nodes;
  total->propagations += part.propagations;
  total->learned_nogoods += part.learned_nogoods;
  total->nogood_hits += part.nogood_hits;
  total->probes += part.probes;
  total->probe_failures += part.probe_failures;
}

/// Lexicographically least decision map: fix vertices in index order, each
/// to the smallest value whose prefix still completes. The completion
/// oracle is a deterministic learning searcher whose nogood database
/// persists across calls, so refuted candidates stay refuted cheaply.
/// `start` must be a valid witness (the completion anchor).
std::vector<int> lex_min_witness(const CspProblem& p,
                                 const std::vector<int>& start,
                                 const EngineOptions& opt) {
  obs::SpanTimer span("solve.canonical_witness");
  EngineOptions oracle_opt = opt;
  oracle_opt.node_limit = 0;  // completeness required
  Searcher oracle(p, make_config(p, 0, /*learning=*/true, opt.seed),
                  oracle_opt);
  std::vector<int> current = start;
  std::vector<Lit> prefix;
  prefix.reserve(p.vertex_ids.size());
  const int vertex_count = static_cast<int>(p.vertex_ids.size());
  for (int v = 0; v < vertex_count; ++v) {
    const auto vs = static_cast<std::size_t>(v);
    std::uint64_t mask = p.domains[vs];
    while (mask != 0) {
      const int value = std::countr_zero(mask);
      mask &= mask - 1;
      if (value == current[vs]) {
        prefix.push_back({v, value});
        break;
      }
      prefix.push_back({v, value});
      std::vector<int> completion;
      const Verdict verdict =
          oracle.solve_under(prefix, /*probe=*/false, &completion);
      prefix.pop_back();
      if (verdict == kSat) {
        current = completion;
        prefix.push_back({v, value});
        break;
      }
    }
  }
  return current;
}

SolveOutcome run_single(const CspProblem& p, const EngineOptions& opt,
                        bool learning) {
  SolveOutcome out;
  Searcher searcher(p, make_config(p, 0, learning, opt.seed), opt);
  std::vector<int> witness;
  const Verdict verdict = searcher.solve_under({}, /*probe=*/true, &witness);
  out.stats = searcher.stats;
  out.learned = std::move(searcher.learned_originals);
  out.exhausted = verdict != kAborted;
  out.solvable = verdict == kSat;
  if (out.solvable) out.witness = std::move(witness);
  return out;
}

SolveOutcome run_portfolio(const CspProblem& p, const EngineOptions& opt) {
  const int width =
      opt.portfolio_width > 0 ? opt.portfolio_width : kDefaultPortfolioWidth;
  std::atomic<bool> cancel{false};
  std::atomic<int> winner{-1};
  std::vector<int> verdicts(static_cast<std::size_t>(width), kAborted);
  std::vector<std::vector<int>> witnesses(static_cast<std::size_t>(width));
  std::vector<EngineStats> worker_stats(static_cast<std::size_t>(width));
  std::vector<std::vector<std::vector<Lit>>> worker_learned(
      static_cast<std::size_t>(width));
  const std::int64_t parent_deadline = util::current_deadline_ns();

  util::parallel_for(static_cast<std::size_t>(width), [&](std::size_t w) {
    // Pool threads have no deadline of their own; re-establish the
    // caller's budget, then race under the shared cancellation flag.
    util::DeadlineScope deadline(parent_deadline);
    util::CancelScope scope(cancel);
    try {
      Searcher searcher(
          p, make_config(p, static_cast<int>(w), /*learning=*/true, opt.seed),
          opt);
      std::vector<int> witness;
      const Verdict verdict =
          searcher.solve_under({}, /*probe=*/true, &witness);
      worker_stats[w] = searcher.stats;
      worker_learned[w] = std::move(searcher.learned_originals);
      verdicts[w] = verdict;
      witnesses[w] = std::move(witness);
      if (verdict != kAborted) {
        int expected = -1;
        winner.compare_exchange_strong(expected, static_cast<int>(w));
        cancel.store(true, std::memory_order_relaxed);
      }
    } catch (const util::OperationCancelled&) {
      // Lost the race; partial stats are discarded (they would make the
      // aggregate depend on cancellation timing anyway).
    }
  });

  SolveOutcome out;
  out.stats.workers = width;
  for (const EngineStats& part : worker_stats) accumulate(&out.stats, part);
  const int win = winner.load();
  out.stats.portfolio_winner = win;
  g_winner.set(win);
  if (win < 0) {
    out.exhausted = false;  // every worker hit the node limit
    return out;
  }
  const auto ws = static_cast<std::size_t>(win);
  out.exhausted = true;
  out.solvable = verdicts[ws] == kSat;
  if (out.solvable) out.witness = std::move(witnesses[ws]);
  out.learned = std::move(worker_learned[ws]);
  return out;
}

}  // namespace

const char* stage_name(EngineStage stage) {
  switch (stage) {
    case EngineStage::kPropagate: return "propagate";
    case EngineStage::kLearn: return "learn";
    case EngineStage::kPortfolio: return "portfolio";
  }
  return "?";
}

SolveOutcome solve(const CspProblem& problem, const EngineOptions& options) {
  obs::SpanTimer span("solve.search");
  SolveOutcome out;
  switch (options.stage) {
    case EngineStage::kPropagate:
      out = run_single(problem, options, /*learning=*/false);
      break;
    case EngineStage::kLearn:
      out = run_single(problem, options, /*learning=*/true);
      break;
    case EngineStage::kPortfolio:
      out = run_portfolio(problem, options);
      break;
  }
  g_propagations.add(out.stats.propagations);
  g_nogood_hits.add(out.stats.nogood_hits);
  if (out.solvable && options.canonical_witness) {
    out.witness = lex_min_witness(problem, out.witness, options);
  }
  return out;
}

SolveOutcome solve_under(const CspProblem& problem,
                         const std::vector<Lit>& assumptions,
                         const EngineOptions& options) {
  // Assumption solving is a single deterministic searcher (the portfolio
  // stage degrades to kLearn here; races add nothing under assumptions).
  const bool learning = options.stage != EngineStage::kPropagate;
  SolveOutcome out;
  Searcher searcher(problem,
                    make_config(problem, 0, learning, options.seed), options);
  std::vector<int> witness;
  const Verdict verdict =
      searcher.solve_under(assumptions, /*probe=*/false, &witness);
  out.stats = searcher.stats;
  out.learned = std::move(searcher.learned_originals);
  out.exhausted = verdict != kAborted;
  out.solvable = verdict == kSat;
  if (out.solvable) out.witness = std::move(witness);
  return out;
}

}  // namespace psph::solve
