#pragma once

// The solvability engine (DESIGN §5.17): propagating, learning,
// portfolio-parallel decision search over a compiled CSP (csp.h).
//
// Three stages, each subsuming the previous and independently selectable
// (the differential suite toggles them one at a time):
//
//   kPropagate — arc consistency over the carrier/validity structure:
//     per-vertex domain masks pruned through saturated facets with
//     incremental per-facet distinct-value counters (the seed backtracker
//     re-derives this per node), unit assignments, wipeout detection, and
//     failed-literal probing at the root.
//
//   kLearn — adds conflict-driven learning: every dead branch is analysed
//     back through its propagation reasons to the minimal implicated set
//     of *decisions* (the saturated-facet conflict set), which becomes a
//     nogood. Nogoods are orbit-canonicalized through the instance's input
//     symmetry group (core/orbit, lowered to dense permutations at compile
//     time) and instantiated across their symmetry class, so one learned
//     conflict prunes every symmetric re-entry. Nogoods propagate through
//     a two-watch scheme like SAT clauses.
//
//   kPortfolio — runs diversified kLearn workers (seeded value orders and
//     tie-breaks) over util::parallel_for with first-finisher-wins
//     cancellation through util/cancel.h. The verdict is deterministic
//     regardless of which worker wins (solvable/unsolvable is a property
//     of the instance, and every worker is a complete solver).
//
// Witness canonicalization: when an instance is solvable and
// canonical_witness is on (default), the reported witness is the
// lexicographically least decision map (vertex index order, ascending
// values), computed by a deterministic completion search seeded from the
// first witness found. This makes the full result — verdict AND witness —
// bit-identical across stages, seeds, thread counts, and portfolio race
// outcomes; only the stats (nodes, winner) reflect the actual run.
//
// Cooperative deadlines: the search loop and the propagation loop both
// poll util::poll_deadline(), so a psph_serve deadline fires mid-
// propagation, not just every few thousand nodes (the seed behavior).

#include <cstdint>
#include <vector>

#include "solve/csp.h"

namespace psph::solve {

enum class EngineStage { kPropagate, kLearn, kPortfolio };

const char* stage_name(EngineStage stage);

struct EngineOptions {
  EngineStage stage = EngineStage::kPortfolio;
  /// Abort a worker after this many search nodes (0 = unlimited). An
  /// aborted worker reports exhausted = false.
  std::uint64_t node_limit = 0;
  /// Failed-literal probing at the root before branching.
  bool root_probing = true;
  /// Instantiate each learned nogood across its orbit under the compiled
  /// symmetry group (capped per nogood by max_symmetric_images).
  bool symmetric_nogoods = true;
  std::size_t max_nogoods = 200'000;
  std::size_t max_symmetric_images = 256;
  /// Portfolio width (number of diversified workers); 0 = default (8).
  /// Fixed independent of thread count so results never depend on it.
  int portfolio_width = 0;
  /// Seed for worker diversification (value orders, tie-break priorities).
  std::uint64_t seed = 0x50561C0DE;
  /// Canonicalize the witness to the lex-min decision map (see above).
  bool canonical_witness = true;
  /// Return the learned nogoods in SolveOutcome (tests; off in production
  /// paths to keep results lean).
  bool collect_nogoods = false;
};

/// One (vertex, value) assignment literal in dense indices.
struct Lit {
  int vertex = 0;
  int value = 0;
  bool operator==(const Lit&) const = default;
  bool operator<(const Lit& o) const {
    return vertex != o.vertex ? vertex < o.vertex : value < o.value;
  }
};

struct EngineStats {
  std::uint64_t nodes = 0;
  std::uint64_t propagations = 0;
  std::uint64_t learned_nogoods = 0;
  std::uint64_t nogood_hits = 0;
  std::uint64_t probes = 0;
  std::uint64_t probe_failures = 0;
  /// Index of the portfolio worker whose verdict was used (-1 outside
  /// portfolio mode). Timing-dependent; never part of sealed results.
  int portfolio_winner = -1;
  int workers = 1;
};

struct SolveOutcome {
  /// A decision map exists. Meaningful only when exhausted.
  bool solvable = false;
  /// The search ran to a definitive verdict (false only under node_limit).
  bool exhausted = false;
  /// Dense value index per vertex when solvable (lex-min under
  /// canonical_witness, else the first witness found).
  std::vector<int> witness;
  EngineStats stats;
  /// Learned nogoods (decision conjunctions proven contradictory), present
  /// when collect_nogoods is set.
  std::vector<std::vector<Lit>> learned;
};

/// Decides the compiled instance. Throws util::DeadlineExceeded if the
/// calling thread's cooperative deadline expires mid-search.
SolveOutcome solve(const CspProblem& problem, const EngineOptions& options = {});

/// Decides the instance under forced assignments (each assumption is
/// applied as a decision before the search; conflicting or out-of-domain
/// assumptions yield unsolvable). The property tests use this to replay
/// learned nogoods against the oracle.
SolveOutcome solve_under(const CspProblem& problem,
                         const std::vector<Lit>& assumptions,
                         const EngineOptions& options = {});

}  // namespace psph::solve
