#include "solve/csp.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <unordered_map>

#include "core/agreement.h"

namespace psph::solve {

CspProblem compile_csp(const topology::SimplicialComplex& protocol, int k,
                       core::ViewRegistry& views,
                       topology::VertexArena& arena,
                       const core::SymmetryGroup* symmetry) {
  CspProblem problem;
  problem.k = k;
  problem.vertex_ids = protocol.vertex_ids();

  std::unordered_map<topology::VertexId, int> vertex_index;
  vertex_index.reserve(problem.vertex_ids.size());
  for (std::size_t i = 0; i < problem.vertex_ids.size(); ++i) {
    vertex_index.emplace(problem.vertex_ids[i], static_cast<int>(i));
  }

  // Dense value table: union of all validity domains, sorted.
  std::vector<std::vector<std::int64_t>> raw_domains;
  raw_domains.reserve(problem.vertex_ids.size());
  std::vector<std::int64_t> all_values;
  for (topology::VertexId v : problem.vertex_ids) {
    raw_domains.push_back(core::allowed_values(v, views, arena));
    all_values.insert(all_values.end(), raw_domains.back().begin(),
                      raw_domains.back().end());
  }
  std::sort(all_values.begin(), all_values.end());
  all_values.erase(std::unique(all_values.begin(), all_values.end()),
                   all_values.end());
  if (all_values.size() > static_cast<std::size_t>(kMaxValues)) {
    throw std::invalid_argument(
        "compile_csp: more than 64 distinct decision values");
  }
  problem.value_of = all_values;
  problem.num_values = static_cast<int>(all_values.size());
  std::unordered_map<std::int64_t, int> value_index;
  for (int i = 0; i < problem.num_values; ++i) {
    value_index.emplace(problem.value_of[static_cast<std::size_t>(i)], i);
  }

  problem.domains.reserve(raw_domains.size());
  for (const std::vector<std::int64_t>& domain : raw_domains) {
    std::uint64_t mask = 0;
    for (std::int64_t value : domain) {
      mask |= std::uint64_t{1} << value_index.at(value);
    }
    problem.domains.push_back(mask);
  }

  problem.facets_of.assign(problem.vertex_ids.size(), {});
  protocol.for_each_facet([&](const topology::Simplex& facet) {
    std::vector<int> members;
    members.reserve(facet.size());
    for (topology::VertexId v : facet.vertices()) {
      members.push_back(vertex_index.at(v));
    }
    const int facet_id = static_cast<int>(problem.facets.size());
    for (int v : members) {
      problem.facets_of[static_cast<std::size_t>(v)].push_back(facet_id);
    }
    problem.facets.push_back(std::move(members));
  });

  // Lower the symmetry group to dense permutations, keeping only elements
  // that verifiably map the compiled problem onto itself.
  const std::size_t vertex_count = problem.vertex_ids.size();
  std::vector<int> identity_vertex(vertex_count);
  for (std::size_t i = 0; i < vertex_count; ++i) {
    identity_vertex[i] = static_cast<int>(i);
  }
  std::vector<int> identity_value(
      static_cast<std::size_t>(problem.num_values));
  for (int i = 0; i < problem.num_values; ++i) {
    identity_value[static_cast<std::size_t>(i)] = i;
  }
  problem.sym_vertex.push_back(identity_vertex);
  problem.sym_value.push_back(identity_value);

  if (symmetry != nullptr && symmetry->size() > 1) {
    core::OrbitContext orbit(*symmetry, views, arena);
    for (std::size_t g = 1; g < symmetry->size(); ++g) {
      const core::SymmetryElement& element = symmetry->element(g);
      std::vector<int> vperm(vertex_count);
      std::vector<int> valperm(static_cast<std::size_t>(problem.num_values));
      bool usable = true;
      for (int i = 0; i < problem.num_values && usable; ++i) {
        const std::int64_t image =
            element.map_value(problem.value_of[static_cast<std::size_t>(i)]);
        const auto it = value_index.find(image);
        if (it == value_index.end()) {
          usable = false;
        } else {
          valperm[static_cast<std::size_t>(i)] = it->second;
        }
      }
      for (std::size_t i = 0; i < vertex_count && usable; ++i) {
        const topology::VertexId image =
            orbit.relabel_vertex(g, problem.vertex_ids[i]);
        const auto it = vertex_index.find(image);
        if (it == vertex_index.end()) {
          usable = false;
          continue;
        }
        vperm[i] = it->second;
        // The image vertex's validity domain must be exactly the
        // value-mapped domain, or relabeled nogoods would be unsound.
        std::uint64_t mapped = 0;
        std::uint64_t mask = problem.domains[i];
        while (mask != 0) {
          const int bit = std::countr_zero(mask);
          mask &= mask - 1;
          mapped |= std::uint64_t{1}
                    << valperm[static_cast<std::size_t>(bit)];
        }
        if (mapped != problem.domains[static_cast<std::size_t>(it->second)]) {
          usable = false;
        }
      }
      if (usable) {
        problem.sym_vertex.push_back(std::move(vperm));
        problem.sym_value.push_back(std::move(valperm));
      }
    }
  }
  return problem;
}

WitnessCheck verify_witness(const CspProblem& problem,
                            const std::vector<int>& assignment) {
  WitnessCheck check;
  if (assignment.size() != problem.vertex_ids.size()) {
    check.ok = false;
    check.reason = "assignment size mismatch";
    return check;
  }
  for (std::size_t v = 0; v < assignment.size(); ++v) {
    const int value = assignment[v];
    if (value < 0 || value >= problem.num_values ||
        (problem.domains[v] & (std::uint64_t{1} << value)) == 0) {
      check.ok = false;
      check.reason = "validity violated at vertex index " + std::to_string(v);
      return check;
    }
  }
  for (std::size_t f = 0; f < problem.facets.size(); ++f) {
    std::uint64_t seen = 0;
    for (int v : problem.facets[f]) {
      seen |= std::uint64_t{1} << assignment[static_cast<std::size_t>(v)];
    }
    if (std::popcount(seen) > problem.k) {
      check.ok = false;
      check.reason = "agreement violated at facet " + std::to_string(f);
      return check;
    }
  }
  return check;
}

}  // namespace psph::solve
