#pragma once

// Bracha-style asynchronous binary Byzantine agreement (echo/ready quorum
// broadcast), after the ABA exemplar: correct for N > 3T.
//
// Each correct process with input 1 broadcasts ECHO(1). A process that has
// collected enough evidence amplifies:
//
//   * >= guard_echo   distinct ECHO senders, or >= guard_ready1 distinct
//     READY senders  -> broadcast ECHO (if it hasn't);
//   * same thresholds, once it has echoed -> broadcast READY;
//   * >= guard_ready2 distinct READY senders -> decide 1.
//
// with guard_echo = (N+T+2)/2 (integer division, i.e. > (N+T)/2),
// guard_ready1 = T+1, guard_ready2 = 2T+1. Safety for N > 3T:
//
//   * unforgeability — if no correct process has input 1, correct ones
//     never see guard_echo echoes (at most T Byzantine echoes exist), so
//     nobody decides;
//   * correctness — if every correct process has input 1, the N-T >=
//     guard_echo correct echoes push everyone through to READY and a
//     decision once the network drains;
//   * relay — guard_ready2 readies contain >= T+1 correct ones, which
//     reach everyone and re-trigger the T+1 amplification, so if any
//     correct process decides, all do.
//
// At N = 3T the guards lose their overlap and the quorum monitors
// (check/monitors.h) catch the resulting violations; the boundary tests
// drive exactly that.

#include <cstdint>
#include <vector>

#include "sim/byzantine.h"
#include "sim/quorum_executor.h"

namespace psph::protocols {

inline constexpr std::uint8_t kAbaEcho = 1;
inline constexpr std::uint8_t kAbaReady = 2;

inline int aba_guard_echo(int n, int t) { return (n + t + 2) / 2; }
inline int aba_guard_ready1(int /*n*/, int t) { return t + 1; }
inline int aba_guard_ready2(int /*n*/, int t) { return 2 * t + 1; }

struct AbaByzConfig {
  int num_processes = 4;
  int max_byzantine = 1;  // T
  int max_rounds = 48;
};

/// A process's quorum certificate: the distinct senders behind its state.
/// Captured twice per run — at decision time (the evidence the decision
/// rests on) and at quiescence (for liveness diagnosis).
struct AbaCertificate {
  sim::ProcessId pid = -1;
  std::vector<sim::ProcessId> echo_senders;
  std::vector<sim::ProcessId> ready_senders;
  bool decided = false;
};

struct AbaByzOutcome {
  sim::QuorumTrace trace;
  /// One entry per correct process that decided, snapshot at decision.
  std::vector<AbaCertificate> certificates;
  /// One entry per correct process, final counts at end of run.
  std::vector<AbaCertificate> final_counts;
};

/// Runs one execution. `inputs` are the N binary inputs (corrupt
/// positions' entries are ignored); throws on non-binary input.
AbaByzOutcome run_aba_byz(const std::vector<std::int64_t>& inputs,
                          const AbaByzConfig& config,
                          sim::ByzantineAdversary& adversary);

/// The (type, values) injection alphabet for this protocol.
sim::ByzAlphabet aba_byz_alphabet();

}  // namespace psph::protocols
