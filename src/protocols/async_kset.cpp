#include "protocols/async_kset.h"

#include <set>
#include <sstream>

#include "util/random.h"

namespace psph::protocols {

AsyncKSetOutcome run_async_kset(const std::vector<std::int64_t>& inputs,
                                const AsyncKSetConfig& config,
                                sim::AsyncAdversary& adversary,
                                core::ViewRegistry& views) {
  AsyncKSetOutcome outcome;
  sim::AsyncRunConfig run_config;
  run_config.num_processes = config.num_processes;
  run_config.max_failures = config.max_failures;
  run_config.rounds = config.rounds;
  outcome.trace = sim::run_async(inputs, run_config, adversary, views);
  for (const auto& [pid, state] : outcome.trace.states.back()) {
    outcome.decisions.emplace_back(pid, views.min_input_seen(state));
  }
  return outcome;
}

AsyncAudit audit(const AsyncKSetOutcome& outcome,
                 const std::vector<std::int64_t>& inputs, int k) {
  AsyncAudit result;
  const std::set<std::int64_t> input_set(inputs.begin(), inputs.end());
  std::set<std::int64_t> decided;
  for (const auto& [pid, value] : outcome.decisions) {
    decided.insert(value);
    if (input_set.count(value) == 0) {
      result.valid = false;
      std::ostringstream why;
      why << "P" << pid << " decided non-input " << value;
      result.failure = why.str();
    }
  }
  result.distinct_decisions = decided.size();
  if (static_cast<int>(decided.size()) > k) {
    result.agreement = false;
    std::ostringstream why;
    why << decided.size() << " distinct decisions, k=" << k;
    result.failure = why.str();
  }
  return result;
}

AsyncAudit soak_async_kset(const AsyncKSetConfig& config, std::uint64_t seed,
                           int executions) {
  util::Rng rng(seed);
  for (int i = 0; i < executions; ++i) {
    core::ViewRegistry views;
    std::vector<std::int64_t> inputs;
    for (int p = 0; p < config.num_processes; ++p) {
      inputs.push_back(rng.next_in(0, config.num_processes));
    }
    sim::RandomAsyncAdversary adversary{util::Rng(rng.next())};
    const AsyncKSetOutcome outcome =
        run_async_kset(inputs, config, adversary, views);
    const AsyncAudit result =
        audit(outcome, inputs, config.max_failures + 1);
    if (!result.ok()) return result;
  }
  return AsyncAudit{};
}

}  // namespace psph::protocols
