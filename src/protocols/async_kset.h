#pragma once

// Asynchronous (f+1)-set agreement — the possibility frontier of
// Corollary 13.
//
// Corollary 13: no asynchronous f-resilient k-set agreement for k ≤ f.
// The matching upper bound is folklore: run one asynchronous round (wait
// for messages from n+1-f processes, including yourself) and decide the
// minimum value received. At most f processes can be missed, and the
// decided minima form at most f+1 distinct values — so k = f+1 is
// achievable, pinning the threshold exactly where the paper's bound puts
// it.

#include <cstdint>
#include <string>
#include <vector>

#include "core/view.h"
#include "sim/adversary.h"
#include "sim/async_executor.h"

namespace psph::protocols {

struct AsyncKSetConfig {
  int num_processes = 3;
  int max_failures = 1;  // f; the protocol achieves k = f + 1
  int rounds = 1;        // more rounds never hurt; one suffices
};

struct AsyncKSetOutcome {
  std::vector<std::pair<core::ProcessId, std::int64_t>> decisions;
  sim::Trace trace;
};

/// Runs the protocol under `adversary`.
AsyncKSetOutcome run_async_kset(const std::vector<std::int64_t>& inputs,
                                const AsyncKSetConfig& config,
                                sim::AsyncAdversary& adversary,
                                core::ViewRegistry& views);

struct AsyncAudit {
  bool valid = true;
  bool agreement = true;  // at most f+1 distinct decisions
  std::size_t distinct_decisions = 0;
  std::string failure;
  bool ok() const { return valid && agreement; }
};

AsyncAudit audit(const AsyncKSetOutcome& outcome,
                 const std::vector<std::int64_t>& inputs, int k);

/// Random-adversary soak across seeds; first failure or all-ok.
AsyncAudit soak_async_kset(const AsyncKSetConfig& config, std::uint64_t seed,
                           int executions);

}  // namespace psph::protocols
