#include "protocols/early_stopping.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/random.h"

namespace psph::protocols {

std::map<core::ProcessId, EarlyDecision> early_stopping_decisions(
    const sim::Trace& trace, const core::ViewRegistry& views, int f) {
  std::map<core::ProcessId, EarlyDecision> decisions;
  const int final_round = std::min(trace.rounds(), f + 1);

  // For each process, walk its per-round states and fire the first rule.
  for (const auto& [pid, last_state] : trace.states.back()) {
    (void)last_state;
    for (int r = 2; r <= final_round; ++r) {
      const auto& now_states = trace.states[static_cast<std::size_t>(r)];
      const auto it = now_states.find(pid);
      if (it == now_states.end()) break;  // crashed before finishing round r
      const std::set<core::ProcessId> alive_now =
          views.direct_senders(it->second);
      const auto& prev_states = trace.states[static_cast<std::size_t>(r - 1)];
      const std::set<core::ProcessId> alive_prev =
          views.direct_senders(prev_states.at(pid));
      const bool clean = alive_now == alive_prev;
      if (clean || r == f + 1) {
        decisions[pid] = {views.min_input_seen(it->second), r};
        break;
      }
    }
    // Degenerate budget f = 0: one failure-free round decides.
    if (decisions.find(pid) == decisions.end() && f == 0 &&
        trace.rounds() >= 1) {
      const auto it = trace.states[1].find(pid);
      if (it != trace.states[1].end()) {
        decisions[pid] = {views.min_input_seen(it->second), 1};
      }
    }
  }
  return decisions;
}

EarlyStoppingOutcome run_early_stopping(
    const std::vector<std::int64_t>& inputs, const EarlyStoppingConfig& config,
    sim::SyncAdversary& adversary, core::ViewRegistry& views) {
  EarlyStoppingOutcome outcome;
  sim::SyncRunConfig run_config;
  run_config.num_processes = config.num_processes;
  run_config.rounds = config.max_failures + 1;
  outcome.trace = sim::run_sync(inputs, run_config, adversary, views);
  outcome.decisions =
      early_stopping_decisions(outcome.trace, views, config.max_failures);
  for (const auto& [pid, decision] : outcome.decisions) {
    (void)pid;
    outcome.max_round_used = std::max(outcome.max_round_used, decision.round);
  }
  return outcome;
}

EarlyAudit audit_early(const EarlyStoppingOutcome& outcome,
                       const std::vector<std::int64_t>& inputs, int f) {
  EarlyAudit result;
  const std::set<std::int64_t> input_set(inputs.begin(), inputs.end());
  std::set<std::int64_t> decided;
  int actual_failures = 0;
  for (const auto& crashed : outcome.trace.crashed_in) {
    actual_failures += static_cast<int>(crashed.size());
  }
  const int bound = std::min(actual_failures + 2, f + 1);
  for (const auto& [pid, decision] : outcome.decisions) {
    decided.insert(decision.value);
    if (input_set.count(decision.value) == 0) {
      result.valid = false;
      std::ostringstream why;
      why << "P" << pid << " decided non-input " << decision.value;
      result.failure = why.str();
    }
    if (decision.round > bound) {
      result.early_bound = false;
      std::ostringstream why;
      why << "P" << pid << " decided in round " << decision.round
          << " > min(f'+2, f+1) = " << bound;
      result.failure = why.str();
    }
  }
  if (decided.size() > 1) {
    result.agreement = false;
    std::ostringstream why;
    why << decided.size() << " distinct consensus decisions";
    result.failure = why.str();
  }
  return result;
}

EarlyAudit exhaustive_early_check(const std::vector<std::int64_t>& inputs,
                                  int f, int per_round_cap) {
  core::ViewRegistry views;
  EarlyAudit first_failure;
  bool failed = false;
  sim::enumerate_sync_executions(
      inputs, /*rounds=*/f + 1, /*total_failures=*/f, per_round_cap, views,
      [&](const sim::Trace& trace) {
        if (failed) return;
        EarlyStoppingOutcome outcome;
        outcome.trace = trace;
        outcome.decisions = early_stopping_decisions(trace, views, f);
        const EarlyAudit result = audit_early(outcome, inputs, f);
        if (!result.ok()) {
          failed = true;
          first_failure = result;
        }
      });
  return failed ? first_failure : EarlyAudit{};
}

EarlyAudit soak_early_stopping(const EarlyStoppingConfig& config,
                               std::uint64_t seed, int executions) {
  util::Rng rng(seed);
  for (int i = 0; i < executions; ++i) {
    core::ViewRegistry views;
    std::vector<std::int64_t> inputs;
    for (int p = 0; p < config.num_processes; ++p) {
      inputs.push_back(rng.next_in(0, config.num_processes));
    }
    sim::RandomSyncAdversary adversary(rng.split(), config.max_failures);
    const EarlyStoppingOutcome outcome =
        run_early_stopping(inputs, config, adversary, views);
    const EarlyAudit result =
        audit_early(outcome, inputs, config.max_failures);
    if (!result.ok()) return result;
  }
  return EarlyAudit{};
}

}  // namespace psph::protocols
