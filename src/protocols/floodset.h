#pragma once

// FloodSet / FloodMin: the classical synchronous k-set agreement protocol
// matching Theorem 18's lower bound.
//
// Every process floods the set of values it knows for R = ⌊f/k⌋ + 1 rounds
// and decides the minimum value it has seen. With at most f crash failures
// this decides at most k distinct values — the upper-bound half of the
// ⌊f/k⌋ + 1 round bound (the lower-bound half is the connectivity of
// S^r(S), Lemma 17). Implemented over the full-information sync executor:
// the "value set known" is derived from the interned view, so the protocol
// is literally the min_seen_rule evaluated on simulator states.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/view.h"
#include "sim/adversary.h"
#include "sim/sync_executor.h"

namespace psph::protocols {

struct FloodSetConfig {
  int num_processes = 3;
  int max_failures = 1;  // f
  int k = 1;             // agreement degree
};

/// Rounds FloodSet runs before deciding: ⌊f/k⌋ + 1.
int floodset_rounds(const FloodSetConfig& config);

struct FloodSetOutcome {
  /// pid -> decided value, for processes alive at the end.
  std::vector<std::pair<core::ProcessId, std::int64_t>> decisions;
  int rounds_used = 0;
  sim::Trace trace;
};

/// Runs one synchronous execution under `adversary` and applies the
/// FloodMin decision at round ⌊f/k⌋ + 1.
FloodSetOutcome run_floodset(const std::vector<std::int64_t>& inputs,
                             const FloodSetConfig& config,
                             sim::SyncAdversary& adversary,
                             core::ViewRegistry& views);

struct AgreementAudit {
  bool valid = true;       // every decision is some process's input
  bool agreement = true;   // at most k distinct decisions
  bool termination = true; // every survivor decided
  std::size_t distinct_decisions = 0;
  std::string failure;

  bool ok() const { return valid && agreement && termination; }
};

/// Audits an outcome against the k-set agreement specification.
AgreementAudit audit(const FloodSetOutcome& outcome,
                     const std::vector<std::int64_t>& inputs, int k);

/// Soak test: runs `executions` random-adversary executions and audits each;
/// returns the first failing audit or an all-ok audit.
AgreementAudit soak_floodset(const FloodSetConfig& config,
                             std::uint64_t seed, int executions);

}  // namespace psph::protocols
