#include "protocols/aba_byz.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>

namespace psph::protocols {

namespace {

class AbaProcess : public sim::QuorumProcess {
 public:
  AbaProcess(sim::ProcessId pid, int input, int guard_echo, int guard_ready1,
             int guard_ready2)
      : pid_(pid),
        input_(input),
        guard_echo_(guard_echo),
        guard_ready1_(guard_ready1),
        guard_ready2_(guard_ready2) {}

  void start(std::vector<sim::QuorumBroadcast>& out) override {
    if (input_ == 1) {
      echoed_ = true;
      out.push_back({kAbaEcho, 1});
    }
  }

  void deliver(sim::ProcessId from, std::uint8_t type,
               std::int64_t value) override {
    if (value != 1) return;  // the ABA value domain is {absent, 1}
    if (type == kAbaEcho) echo_senders_.insert(from);
    if (type == kAbaReady) ready_senders_.insert(from);
  }

  void step(int /*round*/, std::vector<sim::QuorumBroadcast>& out) override {
    // Run the local guards to fixpoint; each send happens at most once,
    // so two passes suffice (echo may enable ready).
    for (int pass = 0; pass < 2; ++pass) {
      const bool amplify =
          static_cast<int>(echo_senders_.size()) >= guard_echo_ ||
          static_cast<int>(ready_senders_.size()) >= guard_ready1_;
      if (!echoed_ && amplify) {
        echoed_ = true;
        out.push_back({kAbaEcho, 1});
      }
      if (echoed_ && !readied_ && amplify) {
        readied_ = true;
        out.push_back({kAbaReady, 1});
      }
    }
    if (!decided_ &&
        static_cast<int>(ready_senders_.size()) >= guard_ready2_) {
      decided_ = true;
      decision_cert_ = certificate();  // evidence at the moment of decision
    }
  }

  std::optional<std::int64_t> decision() const override {
    if (decided_) return 1;
    return std::nullopt;
  }

  AbaCertificate certificate() const {
    AbaCertificate cert;
    cert.pid = pid_;
    cert.echo_senders.assign(echo_senders_.begin(), echo_senders_.end());
    cert.ready_senders.assign(ready_senders_.begin(), ready_senders_.end());
    cert.decided = decided_;
    return cert;
  }

  const std::optional<AbaCertificate>& decision_certificate() const {
    return decision_cert_;
  }

 private:
  std::optional<AbaCertificate> decision_cert_;
  sim::ProcessId pid_;
  int input_;
  int guard_echo_;
  int guard_ready1_;
  int guard_ready2_;
  bool echoed_ = false;
  bool readied_ = false;
  bool decided_ = false;
  std::set<sim::ProcessId> echo_senders_;
  std::set<sim::ProcessId> ready_senders_;
};

}  // namespace

sim::ByzAlphabet aba_byz_alphabet() {
  sim::ByzAlphabet alphabet;
  alphabet.types.push_back({kAbaEcho, {1}});
  alphabet.types.push_back({kAbaReady, {1}});
  return alphabet;
}

AbaByzOutcome run_aba_byz(const std::vector<std::int64_t>& inputs,
                          const AbaByzConfig& config,
                          sim::ByzantineAdversary& adversary) {
  const int n = config.num_processes;
  if (static_cast<int>(inputs.size()) != n) {
    throw std::invalid_argument("run_aba_byz: inputs.size() != n");
  }
  for (const std::int64_t v : inputs) {
    if (v != 0 && v != 1) {
      throw std::invalid_argument("run_aba_byz: inputs must be binary");
    }
  }
  const int t = config.max_byzantine;

  std::vector<std::unique_ptr<sim::QuorumProcess>> processes;
  std::vector<AbaProcess*> raw;
  for (sim::ProcessId pid = 0; pid < n; ++pid) {
    auto p = std::make_unique<AbaProcess>(
        pid, static_cast<int>(inputs[static_cast<std::size_t>(pid)]),
        aba_guard_echo(n, t), aba_guard_ready1(n, t), aba_guard_ready2(n, t));
    raw.push_back(p.get());
    processes.push_back(std::move(p));
  }

  sim::QuorumConfig qc;
  qc.num_processes = n;
  qc.max_byzantine = t;
  qc.max_crashes = 0;  // pure Byzantine model: corrupt or correct, no crashes
  qc.max_rounds = config.max_rounds;

  AbaByzOutcome outcome;
  outcome.trace = sim::run_quorum(qc, processes, adversary);

  const auto is_corrupt = [&](sim::ProcessId pid) {
    return std::binary_search(outcome.trace.corrupt.begin(),
                              outcome.trace.corrupt.end(), pid);
  };
  for (sim::ProcessId pid = 0; pid < n; ++pid) {
    if (is_corrupt(pid)) continue;
    const AbaProcess* p = raw[static_cast<std::size_t>(pid)];
    outcome.final_counts.push_back(p->certificate());
    if (p->decision_certificate().has_value()) {
      outcome.certificates.push_back(*p->decision_certificate());
    }
  }
  return outcome;
}

}  // namespace psph::protocols
