#pragma once

// An α-style synchronizer (Related Work, Awerbuch [Awe85]): run a
// synchronous round-based protocol on top of an asynchronous/timed network
// *in the absence of faults* by advancing rounds on message counts instead
// of timeouts — a process enters round r+1 once it holds all n+1 round-r
// messages.
//
// The paper contrasts this "translation" school of unification with its own
// "common concepts" approach; having both in one codebase makes the
// trade-off concrete:
//   * the synchronizer's decision time tracks actual message delays (no
//     C = c2/c1 penalty, unlike the timeout emulation in semisync_kset.h),
//   * but one crash stalls every round thereafter — the fault-free
//     assumption is essential, as the tests demonstrate.

#include <cstdint>
#include <map>
#include <set>

#include "sim/semisync_executor.h"

namespace psph::protocols {

struct SynchronizerConfig {
  int num_processes = 3;
  int rounds = 2;  // synchronous rounds to emulate before deciding min
};

/// Protocol factory: FloodMin driven by an α-synchronizer (message-count
/// round advance). Runs on the discrete-event executor with *any* delays —
/// correctness never depends on c1, c2, or d.
sim::ProtocolFactory make_synchronized_floodmin(
    const SynchronizerConfig& config);

}  // namespace psph::protocols
