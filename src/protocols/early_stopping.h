#pragma once

// Early-stopping synchronous consensus.
//
// FloodSet always runs the full ⌊f/k⌋+1 rounds; the classical
// early-deciding variant decides as soon as a process observes a *clean
// round* — a round r >= 2 in which it heard from exactly the processes it
// heard from in round r-1 — and falls back to deciding at round f+1.
// Failure-free executions decide in 2 rounds; with f' actual crashes the
// decision takes at most min(f'+2, f+1) rounds. Worst-case optimality is
// unchanged (Theorem 18's bound is about worst cases), which makes this a
// natural ablation of the round bound: the bench shows rounds-used tracking
// f' rather than f.
//
// The rule is evaluated on full-information traces: Alive_r(i) is the set
// of direct senders in i's round-r view, so the protocol is a pure decision
// rule over the same executor the other protocols use.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/view.h"
#include "sim/adversary.h"
#include "sim/sync_executor.h"

namespace psph::protocols {

struct EarlyStoppingConfig {
  int num_processes = 3;
  int max_failures = 1;  // f; consensus (k = 1) only
};

struct EarlyDecision {
  std::int64_t value = 0;
  int round = 0;  // round at whose end the decision fired
};

/// Applies the early-stopping rule to a complete trace (which must span at
/// least f+1 rounds). Returns the decision of every process alive at its
/// decision round.
std::map<core::ProcessId, EarlyDecision> early_stopping_decisions(
    const sim::Trace& trace, const core::ViewRegistry& views, int f);

struct EarlyStoppingOutcome {
  std::map<core::ProcessId, EarlyDecision> decisions;
  int max_round_used = 0;
  sim::Trace trace;
};

/// Runs f+1 synchronous rounds under `adversary` and applies the rule.
EarlyStoppingOutcome run_early_stopping(const std::vector<std::int64_t>& inputs,
                                        const EarlyStoppingConfig& config,
                                        sim::SyncAdversary& adversary,
                                        core::ViewRegistry& views);

struct EarlyAudit {
  bool valid = true;
  bool agreement = true;
  bool early_bound = true;  // every decision round <= min(f'+2, f+1)
  std::string failure;
  bool ok() const { return valid && agreement && early_bound; }
};

/// Audits an outcome (f' computed from the trace's crash records).
EarlyAudit audit_early(const EarlyStoppingOutcome& outcome,
                       const std::vector<std::int64_t>& inputs, int f);

/// Exhaustive validation: enumerates *every* synchronous execution with the
/// given budget and checks validity + agreement + the early bound on each.
/// Returns the first failing audit, or all-ok.
EarlyAudit exhaustive_early_check(const std::vector<std::int64_t>& inputs,
                                  int f, int per_round_cap);

/// Random soak, mirroring the other protocols.
EarlyAudit soak_early_stopping(const EarlyStoppingConfig& config,
                               std::uint64_t seed, int executions);

}  // namespace psph::protocols
