#include "protocols/approx_agreement.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/random.h"

namespace psph::protocols {

int approx_rounds_needed(double initial_spread, double epsilon) {
  if (epsilon <= 0) throw std::invalid_argument("epsilon must be positive");
  int rounds = 1;
  double spread = initial_spread;
  while (spread > epsilon && rounds < 64) {
    spread /= 2;
    ++rounds;
  }
  return rounds;
}

ApproxOutcome run_approx_agreement(const std::vector<double>& inputs,
                                   const ApproxConfig& config,
                                   sim::AsyncAdversary& adversary) {
  if (static_cast<int>(inputs.size()) != config.num_processes) {
    throw std::invalid_argument("approx: inputs size mismatch");
  }
  // Majority intersection is what makes estimates contract: any two
  // heard-sets of size >= n+1-f overlap when 2(n+1-f) > n+1.
  if (2 * config.max_failures >= config.num_processes) {
    throw std::invalid_argument(
        "approx: needs f < (n+1)/2 (majority intersection)");
  }
  std::vector<core::ProcessId> participants;
  for (int p = 0; p < config.num_processes; ++p) participants.push_back(p);
  const int min_heard = config.num_processes - config.max_failures;

  std::map<core::ProcessId, double> estimate;
  for (int p = 0; p < config.num_processes; ++p) {
    estimate[p] = inputs[static_cast<std::size_t>(p)];
  }

  const auto diameter = [&]() {
    double lo = estimate.begin()->second, hi = lo;
    for (const auto& [p, e] : estimate) {
      (void)p;
      lo = std::min(lo, e);
      hi = std::max(hi, e);
    }
    return hi - lo;
  };

  ApproxOutcome outcome;
  while (diameter() > config.epsilon &&
         outcome.rounds_used < config.max_rounds) {
    ++outcome.rounds_used;
    const sim::AsyncRoundPlan plan = adversary.plan_round(
        outcome.rounds_used, participants, min_heard);
    std::map<core::ProcessId, double> next;
    for (core::ProcessId p : participants) {
      const auto it = plan.heard.find(p);
      if (it == plan.heard.end() ||
          static_cast<int>(it->second.size()) < min_heard ||
          it->second.count(p) == 0) {
        throw std::logic_error("approx: illegal adversary plan");
      }
      double lo = estimate.at(p), hi = lo;
      for (core::ProcessId sender : it->second) {
        lo = std::min(lo, estimate.at(sender));
        hi = std::max(hi, estimate.at(sender));
      }
      next[p] = (lo + hi) / 2;
    }
    estimate = std::move(next);
  }
  for (const auto& [p, e] : estimate) outcome.decisions.emplace_back(p, e);
  return outcome;
}

ApproxAudit audit_approx(const ApproxOutcome& outcome,
                         const std::vector<double>& inputs, double epsilon) {
  ApproxAudit result;
  const double in_lo = *std::min_element(inputs.begin(), inputs.end());
  const double in_hi = *std::max_element(inputs.begin(), inputs.end());
  double lo = outcome.decisions.front().second, hi = lo;
  for (const auto& [pid, value] : outcome.decisions) {
    lo = std::min(lo, value);
    hi = std::max(hi, value);
    if (value < in_lo - 1e-12 || value > in_hi + 1e-12) {
      result.in_range = false;
      std::ostringstream why;
      why << "P" << pid << " decided " << value << " outside ["
          << in_lo << ", " << in_hi << "]";
      result.failure = why.str();
    }
  }
  result.diameter = hi - lo;
  if (result.diameter > epsilon + 1e-12) {
    result.converged = false;
    std::ostringstream why;
    why << "diameter " << result.diameter << " > epsilon " << epsilon;
    result.failure = why.str();
  }
  return result;
}

ApproxAudit soak_approx_agreement(const ApproxConfig& config,
                                  std::uint64_t seed, int executions) {
  util::Rng rng(seed);
  for (int i = 0; i < executions; ++i) {
    std::vector<double> inputs;
    for (int p = 0; p < config.num_processes; ++p) {
      inputs.push_back(rng.next_double() * 10.0);
    }
    sim::RandomAsyncAdversary adversary{util::Rng(rng.next())};
    const ApproxOutcome outcome =
        run_approx_agreement(inputs, config, adversary);
    const ApproxAudit result =
        audit_approx(outcome, inputs, config.epsilon);
    if (!result.ok()) return result;
  }
  return ApproxAudit{};
}

}  // namespace psph::protocols
