#pragma once

// Timeout-based semi-synchronous k-set agreement (the operational
// counterpart of Corollary 22).
//
// Processes emulate synchronous rounds by local step counting. A process
// may end round j only once it is *certain* every correct process's round-j
// message has arrived: a correct process sends round j at local step N_{j-1}
// (real time ≤ N_{j-1}·c2) and delivery takes ≤ d, so
//     N_j = ⌈(N_{j-1}·c2 + d) / c1⌉,  N_0 = 0.
// After R = ⌊f/k⌋ + 1 emulated rounds the process decides the minimum value
// it knows (FloodMin). Decision time is ≥ N_R·c1 ≥ ⌊f/k⌋·d + d and grows
// with C = c2/c1 — the same shape as the paper's ⌊f/k⌋d + Cd lower bound,
// which the cor22 bench sweeps.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/semisync_executor.h"

namespace psph::protocols {

struct SemiSyncKSetConfig {
  sim::SemiSyncConfig timing;
  int max_failures = 1;  // f
  int k = 1;
};

/// The local step counts N_1..N_R at which rounds end.
std::vector<sim::Time> round_step_schedule(const SemiSyncKSetConfig& config);

/// Number of emulated rounds: ⌊f/k⌋ + 1.
int semisync_rounds(const SemiSyncKSetConfig& config);

/// A protocol factory producing per-process FloodMin-over-timeouts
/// instances for run_semisync.
sim::ProtocolFactory make_semisync_kset(const SemiSyncKSetConfig& config);

struct SemiSyncAudit {
  bool valid = true;
  bool agreement = true;
  bool termination = true;
  std::size_t distinct_decisions = 0;
  sim::Time last_decision_time = 0;
  std::string failure;
  bool ok() const { return valid && agreement && termination; }
};

SemiSyncAudit audit_semisync(const sim::SemiSyncResult& result,
                             const std::vector<std::int64_t>& inputs, int k);

/// Random-adversary soak; first failing audit or all-ok (with the max
/// decision time observed across executions).
SemiSyncAudit soak_semisync_kset(const SemiSyncKSetConfig& config,
                                 std::uint64_t seed, int executions);

}  // namespace psph::protocols
