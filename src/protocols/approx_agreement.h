#pragma once

// Wait-free approximate agreement — the classical *solvable* counterpoint
// to Corollary 13.
//
// Exact consensus is impossible asynchronously with even one failure, but
// ε-agreement (all decisions within ε of each other, inside the input
// range) is wait-free solvable: in each asynchronous round a process
// replaces its estimate with the midpoint of the extremes it received;
// each round at least halves the diameter of the surviving estimates when
// at most f < (n+1)/2... in the full-information one-round structure used
// here (everyone hears >= n+1-f estimates including their own), the
// diameter shrinks by a model-dependent factor; rounds(ε) below uses the
// conservative halving bound with convergence verified by the audit.
//
// Topologically this is the paper's machinery at work on a decidable task:
// the protocol complex is (f-1)-connected, but ε-agreement's output complex
// is also connected, so connectivity is no obstruction — and indeed the
// protocol below succeeds where consensus provably cannot.

#include <cstdint>
#include <string>
#include <vector>

#include "core/view.h"
#include "sim/adversary.h"
#include "sim/async_executor.h"

namespace psph::protocols {

struct ApproxConfig {
  int num_processes = 3;
  int max_failures = 1;
  double epsilon = 0.25;
  /// Hard cap on rounds (safety); convergence normally ends earlier.
  int max_rounds = 64;
};

/// Rounds sufficient for diameter <= ε from an initial spread, assuming
/// halving per round: ceil(log2(spread / ε)), at least 1.
int approx_rounds_needed(double initial_spread, double epsilon);

struct ApproxOutcome {
  /// pid -> final estimate.
  std::vector<std::pair<core::ProcessId, double>> decisions;
  int rounds_used = 0;
};

/// Runs midpoint-of-extremes approximate agreement in the round-based
/// asynchronous model under `adversary`.
ApproxOutcome run_approx_agreement(const std::vector<double>& inputs,
                                   const ApproxConfig& config,
                                   sim::AsyncAdversary& adversary);

struct ApproxAudit {
  bool in_range = true;   // every decision within [min input, max input]
  bool converged = true;  // decision diameter <= epsilon
  double diameter = 0.0;
  std::string failure;
  bool ok() const { return in_range && converged; }
};

ApproxAudit audit_approx(const ApproxOutcome& outcome,
                         const std::vector<double>& inputs, double epsilon);

/// Random-adversary soak.
ApproxAudit soak_approx_agreement(const ApproxConfig& config,
                                  std::uint64_t seed, int executions);

}  // namespace psph::protocols
