#include "protocols/synchronizer.h"

#include <algorithm>
#include <memory>

namespace psph::protocols {

namespace {

class SynchronizedFloodMin final : public sim::SemiSyncProtocol {
 public:
  explicit SynchronizedFloodMin(const SynchronizerConfig& config)
      : config_(config) {}

  void on_start(sim::ProcessApi& api) override {
    known_[api.self()] = api.input();
    api.broadcast(known_, /*tag=*/1);
  }

  void on_message(sim::ProcessApi& api, const sim::SemiSyncMessage& msg)
      override {
    for (const auto& [pid, value] : msg.values) {
      const auto it = known_.find(pid);
      if (it == known_.end() || value < it->second) known_[pid] = value;
    }
    received_[msg.tag].insert(msg.from);
    advance_if_round_complete(api);
  }

  void on_step(sim::ProcessApi& api) override {
    // Fully message-driven; steps only matter because the executor
    // delivers the inbox at step boundaries.
    advance_if_round_complete(api);
  }

 private:
  void advance_if_round_complete(sim::ProcessApi& api) {
    if (api.has_decided()) return;
    // The synchronizer condition: all round-`round_` messages are in.
    while (static_cast<int>(received_[round_].size()) ==
           config_.num_processes) {
      ++round_;
      if (round_ > config_.rounds) {
        std::int64_t best = known_.begin()->second;
        for (const auto& [pid, value] : known_) {
          (void)pid;
          best = std::min(best, value);
        }
        api.decide(best);
        return;
      }
      api.broadcast(known_, /*tag=*/round_);
    }
  }

  SynchronizerConfig config_;
  std::map<sim::ProcessId, std::int64_t> known_;
  std::map<int, std::set<sim::ProcessId>> received_;  // round -> senders
  int round_ = 1;
};

}  // namespace

sim::ProtocolFactory make_synchronized_floodmin(
    const SynchronizerConfig& config) {
  return [config]() {
    return std::make_unique<SynchronizedFloodMin>(config);
  };
}

}  // namespace psph::protocols
