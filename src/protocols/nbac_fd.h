#pragma once

// Non-blocking atomic commit over a failure-detector oracle, after the
// weak-NBAC exemplar (Guerraoui 2001).
//
// Every process broadcasts VOTE(v), v in {0 = NO, 1 = YES}, then decides:
//
//   * saw a NO vote                      -> ABORT (abort-validity witness);
//   * received all N YES votes          -> COMMIT;
//   * detector suspects someone, and no  -> ABORT (the suspicion is the
//     commit is yet possible                 justification);
//
// with NO taking priority over COMMIT and COMMIT over suspicion when
// several fire in the same round.
//
// Deliberately, this protocol does NOT guarantee agreement: one process
// can receive all N YES votes and commit while another, missing a crashed
// voter's message, aborts on a (perfectly accurate) suspicion. That
// divergence is Guerraoui's hardness result for NBAC over realistic
// detectors, and the check layer treats it accordingly — the
// NbacObligationMonitor enforces commit-validity, abort-validity, and
// termination, while agreement is only *observed* (monitored k defaults
// to 2 for this protocol; pinning k = 1 plants a demonstration of the
// hardness, see the quorum tests).

#include <cstdint>
#include <vector>

#include "sim/byzantine.h"
#include "sim/failure_detector.h"
#include "sim/quorum_executor.h"

namespace psph::protocols {

inline constexpr std::uint8_t kNbacVote = 1;
inline constexpr std::int64_t kNbacAbort = 0;
inline constexpr std::int64_t kNbacCommit = 1;

struct NbacFdConfig {
  int num_processes = 4;
  int max_crashes = 1;
  int max_rounds = 48;
};

/// Why a process decided what it decided — the evidence the obligation
/// monitor audits.
struct NbacJustification {
  sim::ProcessId pid = -1;
  bool saw_no = false;         // received a NO vote
  bool saw_suspicion = false;  // detector suspected someone pre-decision
  int yes_votes = 0;           // distinct YES voters received
  std::int64_t decided = -1;   // kNbacAbort / kNbacCommit
};

struct NbacFdOutcome {
  sim::QuorumTrace trace;
  /// One entry per correct process that decided.
  std::vector<NbacJustification> justifications;
};

/// Runs one execution over the given detector. `votes` are the N binary
/// votes; the adversary controls asynchrony and crash-stop failures (this
/// is a crash-model protocol: max_byzantine is pinned to 0).
NbacFdOutcome run_nbac_fd(const std::vector<std::int64_t>& votes,
                          const NbacFdConfig& config,
                          sim::ByzantineAdversary& adversary,
                          sim::FailureDetector& detector);

/// Injection alphabet (unused in the crash model, kept for symmetry).
sim::ByzAlphabet nbac_fd_alphabet();

}  // namespace psph::protocols
