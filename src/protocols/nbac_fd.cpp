#include "protocols/nbac_fd.h"

#include <memory>
#include <set>
#include <stdexcept>

namespace psph::protocols {

namespace {

class NbacProcess : public sim::QuorumProcess {
 public:
  NbacProcess(sim::ProcessId pid, int vote, int num_processes)
      : pid_(pid), vote_(vote), num_processes_(num_processes) {}

  void start(std::vector<sim::QuorumBroadcast>& out) override {
    out.push_back({kNbacVote, vote_});
  }

  void deliver(sim::ProcessId from, std::uint8_t type,
               std::int64_t value) override {
    if (type != kNbacVote) return;
    if (value == 0) saw_no_ = true;
    if (value == 1) yes_voters_.insert(from);
  }

  void suspect(const std::vector<sim::ProcessId>& suspected) override {
    if (decided_.has_value()) return;
    for (const sim::ProcessId pid : suspected) {
      if (pid != pid_) {
        saw_suspicion_ = true;
        break;
      }
    }
  }

  void step(int /*round*/, std::vector<sim::QuorumBroadcast>& out) override {
    (void)out;
    if (decided_.has_value()) return;
    // Priority: a NO vote is definitive; all-YES commits; otherwise a
    // suspicion means some vote may never arrive, so abort.
    if (saw_no_) {
      decided_ = kNbacAbort;
    } else if (static_cast<int>(yes_voters_.size()) == num_processes_) {
      decided_ = kNbacCommit;
    } else if (saw_suspicion_) {
      decided_ = kNbacAbort;
    }
  }

  std::optional<std::int64_t> decision() const override { return decided_; }

  NbacJustification justification() const {
    NbacJustification j;
    j.pid = pid_;
    j.saw_no = saw_no_;
    j.saw_suspicion = saw_suspicion_;
    j.yes_votes = static_cast<int>(yes_voters_.size());
    j.decided = decided_.value_or(-1);
    return j;
  }

 private:
  sim::ProcessId pid_;
  std::int64_t vote_;
  int num_processes_;
  bool saw_no_ = false;
  bool saw_suspicion_ = false;
  std::set<sim::ProcessId> yes_voters_;
  std::optional<std::int64_t> decided_;
};

}  // namespace

sim::ByzAlphabet nbac_fd_alphabet() { return {}; }

NbacFdOutcome run_nbac_fd(const std::vector<std::int64_t>& votes,
                          const NbacFdConfig& config,
                          sim::ByzantineAdversary& adversary,
                          sim::FailureDetector& detector) {
  const int n = config.num_processes;
  if (static_cast<int>(votes.size()) != n) {
    throw std::invalid_argument("run_nbac_fd: votes.size() != n");
  }
  for (const std::int64_t v : votes) {
    if (v != 0 && v != 1) {
      throw std::invalid_argument("run_nbac_fd: votes must be binary");
    }
  }

  std::vector<std::unique_ptr<sim::QuorumProcess>> processes;
  std::vector<NbacProcess*> raw;
  for (sim::ProcessId pid = 0; pid < n; ++pid) {
    auto p = std::make_unique<NbacProcess>(
        pid, static_cast<int>(votes[static_cast<std::size_t>(pid)]), n);
    raw.push_back(p.get());
    processes.push_back(std::move(p));
  }

  sim::QuorumConfig qc;
  qc.num_processes = n;
  qc.max_byzantine = 0;  // crash model
  qc.max_crashes = config.max_crashes;
  qc.max_rounds = config.max_rounds;

  NbacFdOutcome outcome;
  outcome.trace = sim::run_quorum(qc, processes, adversary, &detector);

  // Obligations are uniform: a decider's justification counts even if it
  // crashed afterwards.
  for (sim::ProcessId pid = 0; pid < n; ++pid) {
    const NbacJustification j = raw[static_cast<std::size_t>(pid)]->justification();
    if (j.decided >= 0) outcome.justifications.push_back(j);
  }
  return outcome;
}

}  // namespace psph::protocols
