#include "protocols/floodset.h"

#include <set>
#include <sstream>

#include "util/random.h"

namespace psph::protocols {

int floodset_rounds(const FloodSetConfig& config) {
  return config.max_failures / config.k + 1;
}

FloodSetOutcome run_floodset(const std::vector<std::int64_t>& inputs,
                             const FloodSetConfig& config,
                             sim::SyncAdversary& adversary,
                             core::ViewRegistry& views) {
  FloodSetOutcome outcome;
  outcome.rounds_used = floodset_rounds(config);
  sim::SyncRunConfig run_config;
  run_config.num_processes = config.num_processes;
  run_config.rounds = outcome.rounds_used;
  outcome.trace = sim::run_sync(inputs, run_config, adversary, views);
  for (const auto& [pid, state] : outcome.trace.states.back()) {
    outcome.decisions.emplace_back(pid, views.min_input_seen(state));
  }
  return outcome;
}

AgreementAudit audit(const FloodSetOutcome& outcome,
                     const std::vector<std::int64_t>& inputs, int k) {
  AgreementAudit result;
  std::set<std::int64_t> input_set(inputs.begin(), inputs.end());
  std::set<std::int64_t> decided;
  for (const auto& [pid, value] : outcome.decisions) {
    decided.insert(value);
    if (input_set.count(value) == 0) {
      result.valid = false;
      std::ostringstream why;
      why << "P" << pid << " decided non-input value " << value;
      result.failure = why.str();
    }
  }
  result.distinct_decisions = decided.size();
  if (static_cast<int>(decided.size()) > k) {
    result.agreement = false;
    std::ostringstream why;
    why << decided.size() << " distinct decisions, k=" << k;
    result.failure = why.str();
  }
  // Termination: in the synchronous model every survivor decides at the
  // fixed round, so it holds iff every survivor produced a decision.
  if (outcome.decisions.empty()) {
    result.termination = false;
    result.failure = "no survivor decided";
  }
  return result;
}

AgreementAudit soak_floodset(const FloodSetConfig& config, std::uint64_t seed,
                             int executions) {
  util::Rng rng(seed);
  for (int i = 0; i < executions; ++i) {
    core::ViewRegistry views;
    std::vector<std::int64_t> inputs;
    for (int p = 0; p < config.num_processes; ++p) {
      inputs.push_back(rng.next_in(0, config.num_processes));
    }
    sim::RandomSyncAdversary adversary(rng.split(), config.max_failures);
    const FloodSetOutcome outcome =
        run_floodset(inputs, config, adversary, views);
    const AgreementAudit result = audit(outcome, inputs, config.k);
    if (!result.ok()) return result;
  }
  return AgreementAudit{};
}

}  // namespace psph::protocols
