#include "protocols/semisync_kset.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/random.h"

namespace psph::protocols {

int semisync_rounds(const SemiSyncKSetConfig& config) {
  return config.max_failures / config.k + 1;
}

std::vector<sim::Time> round_step_schedule(const SemiSyncKSetConfig& config) {
  const int rounds = semisync_rounds(config);
  std::vector<sim::Time> schedule;
  sim::Time prev = 0;
  for (int j = 1; j <= rounds; ++j) {
    const sim::Time next =
        (prev * config.timing.c2 + config.timing.d + config.timing.c1 - 1) /
        config.timing.c1;
    schedule.push_back(next);
    prev = next;
  }
  return schedule;
}

namespace {

class FloodMinOverTimeouts final : public sim::SemiSyncProtocol {
 public:
  explicit FloodMinOverTimeouts(const SemiSyncKSetConfig& config)
      : schedule_(round_step_schedule(config)) {}

  void on_start(sim::ProcessApi& api) override {
    known_[api.self()] = api.input();
    api.broadcast(known_, /*tag=*/1);  // round-1 values
  }

  void on_message(sim::ProcessApi& api, const sim::SemiSyncMessage& msg)
      override {
    (void)api;
    for (const auto& [pid, value] : msg.values) {
      const auto it = known_.find(pid);
      if (it == known_.end() || value < it->second) known_[pid] = value;
    }
  }

  void on_step(sim::ProcessApi& api) override {
    if (api.has_decided()) return;
    ++steps_;
    const std::size_t round_index = static_cast<std::size_t>(round_ - 1);
    if (round_index < schedule_.size() && steps_ >= schedule_[round_index]) {
      ++round_;
      if (round_ > static_cast<int>(schedule_.size())) {
        // All emulated rounds complete: decide the minimum known value.
        std::int64_t best = known_.begin()->second;
        for (const auto& [pid, value] : known_) {
          (void)pid;
          best = std::min(best, value);
        }
        api.decide(best);
      } else {
        api.broadcast(known_, /*tag=*/round_);
      }
    }
  }

 private:
  std::vector<sim::Time> schedule_;
  std::map<sim::ProcessId, std::int64_t> known_;
  sim::Time steps_ = 0;
  int round_ = 1;
};

}  // namespace

sim::ProtocolFactory make_semisync_kset(const SemiSyncKSetConfig& config) {
  return [config]() {
    return std::make_unique<FloodMinOverTimeouts>(config);
  };
}

SemiSyncAudit audit_semisync(const sim::SemiSyncResult& result,
                             const std::vector<std::int64_t>& inputs, int k) {
  SemiSyncAudit auditres;
  const std::set<std::int64_t> input_set(inputs.begin(), inputs.end());
  std::set<std::int64_t> decided;
  for (const auto& [pid, decision] : result.decisions) {
    decided.insert(decision.value);
    auditres.last_decision_time =
        std::max(auditres.last_decision_time, decision.time);
    if (input_set.count(decision.value) == 0) {
      auditres.valid = false;
      std::ostringstream why;
      why << "P" << pid << " decided non-input " << decision.value;
      auditres.failure = why.str();
    }
  }
  auditres.distinct_decisions = decided.size();
  if (static_cast<int>(decided.size()) > k) {
    auditres.agreement = false;
    std::ostringstream why;
    why << decided.size() << " distinct decisions, k=" << k;
    auditres.failure = why.str();
  }
  if (!result.all_alive_decided) {
    auditres.termination = false;
    auditres.failure = "not every alive process decided before max_time";
  }
  return auditres;
}

SemiSyncAudit soak_semisync_kset(const SemiSyncKSetConfig& config,
                                 std::uint64_t seed, int executions) {
  util::Rng rng(seed);
  SemiSyncAudit last_ok;
  for (int i = 0; i < executions; ++i) {
    std::vector<std::int64_t> inputs;
    for (int p = 0; p < config.timing.num_processes; ++p) {
      inputs.push_back(rng.next_in(0, config.timing.num_processes));
    }
    // Crashes within the first emulated round's span.
    const std::vector<sim::Time> schedule = round_step_schedule(config);
    const sim::Time horizon = schedule.empty()
                                  ? config.timing.d
                                  : schedule.back() * config.timing.c2;
    sim::RandomSemiSyncAdversary adversary(
        util::Rng(rng.next()), config.timing, config.max_failures,
        /*crash_probability=*/0.3, horizon);
    const sim::SemiSyncResult result = sim::run_semisync(
        inputs, config.timing, make_semisync_kset(config), adversary);
    const SemiSyncAudit auditres = audit_semisync(result, inputs, config.k);
    if (!auditres.ok()) return auditres;
    last_ok.last_decision_time =
        std::max(last_ok.last_decision_time, auditres.last_decision_time);
    last_ok.distinct_decisions =
        std::max(last_ok.distinct_decisions, auditres.distinct_decisions);
  }
  return last_ok;
}

}  // namespace psph::protocols
