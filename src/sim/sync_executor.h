#pragma once

// Synchronous lockstep executor (Section 7's model, operationally).
//
// Each round, every alive process sends its full-information state to all;
// the adversary crashes a subset mid-round and chooses which of their
// messages still arrive; survivors receive every survivor's message plus
// the delivered crasher messages and update their state. States are
// interned in a core::ViewRegistry with the same encoding as
// core/sync_complex.h, so executor traces land on the same vertices as the
// theoretical construction — the bridge test exploits this.

#include <memory>
#include <vector>

#include "core/view.h"
#include "sim/adversary.h"
#include "sim/trace.h"

namespace psph::sim {

struct SyncRunConfig {
  int num_processes = 3;
  int rounds = 1;
};

/// Runs one synchronous execution from the given inputs under `adversary`.
Trace run_sync(const std::vector<std::int64_t>& inputs,
               const SyncRunConfig& config, SyncAdversary& adversary,
               core::ViewRegistry& views);

/// Enumerates *all* synchronous executions from `inputs` with at most
/// `failures_per_round` fresh crashes per round and `total_failures`
/// overall, calling `visit` once per complete trace. Exponential; intended
/// for the bridge cross-validation at small sizes.
void enumerate_sync_executions(const std::vector<std::int64_t>& inputs,
                               int rounds, int total_failures,
                               int failures_per_round,
                               core::ViewRegistry& views,
                               const std::function<void(const Trace&)>& visit);

}  // namespace psph::sim
