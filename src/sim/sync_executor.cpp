#include "sim/sync_executor.h"

#include <algorithm>
#include <stdexcept>

#include "math/combinatorics.h"

namespace psph::sim {

namespace {

// Applies one synchronous round to `current` states. `crash` is the set of
// processes crashing this round; `delivered_to[c]` the survivors receiving
// c's message anyway.
std::map<ProcessId, StateId> step_round(
    const std::map<ProcessId, StateId>& current,
    const std::vector<ProcessId>& crash,
    const std::map<ProcessId, std::set<ProcessId>>& delivered_to, int round,
    core::ViewRegistry& views) {
  std::map<ProcessId, StateId> next;
  for (const auto& [receiver, state] : current) {
    (void)state;
    if (std::find(crash.begin(), crash.end(), receiver) != crash.end()) {
      continue;  // crashed mid-round: no post-round state
    }
    std::vector<core::HeardEntry> heard;
    for (const auto& [sender, sender_state] : current) {
      const bool sender_crashes =
          std::find(crash.begin(), crash.end(), sender) != crash.end();
      if (!sender_crashes) {
        heard.push_back({sender, sender_state, core::kNoMicro});
      } else {
        const auto it = delivered_to.find(sender);
        if (it != delivered_to.end() && it->second.count(receiver) != 0) {
          heard.push_back({sender, sender_state, core::kNoMicro});
        }
      }
    }
    next[receiver] = views.intern_round(receiver, round, std::move(heard));
  }
  return next;
}

}  // namespace

Trace run_sync(const std::vector<std::int64_t>& inputs,
               const SyncRunConfig& config, SyncAdversary& adversary,
               core::ViewRegistry& views) {
  if (static_cast<int>(inputs.size()) != config.num_processes) {
    throw std::invalid_argument("run_sync: inputs size != num_processes");
  }
  Trace trace;
  std::map<ProcessId, StateId> current;
  for (int p = 0; p < config.num_processes; ++p) {
    current[p] = views.intern_input(p, inputs[static_cast<std::size_t>(p)]);
  }
  trace.states.push_back(current);
  trace.crashed_in.push_back({});

  for (int round = 1; round <= config.rounds; ++round) {
    std::vector<ProcessId> alive;
    for (const auto& [p, s] : current) {
      (void)s;
      alive.push_back(p);
    }
    const SyncRoundPlan plan = adversary.plan_round(round, alive);
    // Reject malformed plans loudly: a silently-ignored illegal choice
    // would make recorded schedules unfaithful to the executed run.
    std::set<ProcessId> crashing;
    for (ProcessId c : plan.crash) {
      if (current.find(c) == current.end()) {
        throw std::logic_error("sync adversary crashed a dead process");
      }
      if (!crashing.insert(c).second) {
        throw std::logic_error("sync adversary crashed a process twice");
      }
    }
    for (const auto& [sender, receivers] : plan.delivered_to) {
      if (crashing.count(sender) == 0) {
        throw std::logic_error(
            "sync adversary gave a delivery plan for a non-crashing process");
      }
      for (ProcessId receiver : receivers) {
        if (current.find(receiver) == current.end() ||
            crashing.count(receiver) != 0) {
          throw std::logic_error(
              "sync adversary delivered a crasher message to a non-survivor");
        }
      }
    }
    current = step_round(current, plan.crash, plan.delivered_to, round, views);
    trace.states.push_back(current);
    trace.crashed_in.push_back(plan.crash);
  }
  return trace;
}

void enumerate_sync_executions(
    const std::vector<std::int64_t>& inputs, int rounds, int total_failures,
    int failures_per_round, core::ViewRegistry& views,
    const std::function<void(const Trace&)>& visit) {
  std::map<ProcessId, StateId> initial;
  for (std::size_t p = 0; p < inputs.size(); ++p) {
    initial[static_cast<ProcessId>(p)] =
        views.intern_input(static_cast<ProcessId>(p), inputs[p]);
  }

  Trace trace;
  trace.states.push_back(initial);
  trace.crashed_in.push_back({});

  // Depth-first over rounds; within a round, over (crash set, per-crasher
  // delivery sets).
  const std::function<void(int, int)> recurse = [&](int round, int budget) {
    if (round > rounds) {
      visit(trace);
      return;
    }
    const std::map<ProcessId, StateId>& current = trace.states.back();
    std::vector<ProcessId> alive;
    for (const auto& [p, s] : current) {
      (void)s;
      alive.push_back(p);
    }
    const int cap = std::min(failures_per_round, budget);
    for (const std::vector<ProcessId>& crash :
         math::subsets_with_size_between(alive, 0, cap)) {
      std::vector<ProcessId> survivors;
      for (ProcessId p : alive) {
        if (std::find(crash.begin(), crash.end(), p) == crash.end()) {
          survivors.push_back(p);
        }
      }
      // Per crasher, every subset of survivors may receive its message:
      // iterate the cross product.
      std::vector<std::vector<std::vector<ProcessId>>> delivery_choices;
      for (std::size_t c = 0; c < crash.size(); ++c) {
        delivery_choices.push_back(math::all_subsets(survivors));
      }
      std::vector<std::size_t> sizes;
      for (const auto& choices : delivery_choices) {
        sizes.push_back(choices.size());
      }
      math::for_each_product(sizes, [&](const std::vector<std::size_t>& odo) {
        std::map<ProcessId, std::set<ProcessId>> delivered_to;
        for (std::size_t c = 0; c < crash.size(); ++c) {
          const auto& receivers = delivery_choices[c][odo[c]];
          delivered_to[crash[c]] =
              std::set<ProcessId>(receivers.begin(), receivers.end());
        }
        // Apply the round, recurse, undo.
        trace.states.push_back(step_round(trace.states.back(), crash,
                                          delivered_to, round, views));
        trace.crashed_in.push_back(crash);
        recurse(round + 1, budget - static_cast<int>(crash.size()));
        trace.states.pop_back();
        trace.crashed_in.pop_back();
      });
    }
  };
  recurse(1, total_failures);
}

}  // namespace psph::sim
