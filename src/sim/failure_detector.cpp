#include "sim/failure_detector.h"

#include <algorithm>

namespace psph::sim {

SomeFailDetector::SomeFailDetector(util::Rng rng, int max_lag)
    : rng_(rng), max_lag_(std::max(0, max_lag)) {}

std::vector<ProcessId> SomeFailDetector::suspects(
    ProcessId observer, int round, const std::vector<ProcessId>& crashed) {
  std::vector<ProcessId> result;
  for (const ProcessId pid : crashed) {
    const auto key = std::make_pair(observer, pid);
    auto it = visible_from_.find(key);
    if (it == visible_from_.end()) {
      const int lag =
          static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(
              max_lag_ + 1)));
      it = visible_from_.emplace(key, round + lag).first;
    }
    if (round >= it->second) result.push_back(pid);
  }
  return result;
}

EventuallyStrongDetector::EventuallyStrongDetector(
    util::Rng rng, int num_processes, int max_unstable_rounds,
    double false_suspicion_probability)
    : rng_(rng),
      num_processes_(num_processes),
      stabilization_round_(static_cast<int>(rng_.next_below(
          static_cast<std::uint64_t>(std::max(0, max_unstable_rounds) + 1)))),
      false_suspicion_probability_(false_suspicion_probability) {}

std::vector<ProcessId> EventuallyStrongDetector::suspects(
    ProcessId observer, int round, const std::vector<ProcessId>& crashed) {
  std::vector<ProcessId> result = crashed;  // lag-0 completeness
  if (round < stabilization_round_) {
    for (ProcessId pid = 0; pid < num_processes_; ++pid) {
      if (pid == observer) continue;
      if (std::binary_search(crashed.begin(), crashed.end(), pid)) continue;
      if (rng_.next_bool(false_suspicion_probability_)) result.push_back(pid);
    }
    std::sort(result.begin(), result.end());
  }
  return result;
}

}  // namespace psph::sim
