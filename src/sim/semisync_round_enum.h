#pragma once

// Microround-level enumeration of semi-synchronous round executions.
//
// Complements the discrete-event executor with an exhaustive path: for one
// round of the Section 8 structure (μ microrounds, failing set K with
// pattern F, per-receiver choice of whether a crasher's final microround
// message arrives), simulate the actual message flow microround by
// microround and intern the resulting survivor views. The bridge test
// compares the union over all (K, F, choices) with the theoretical
// M¹(S) = ∪ ψ(S\K; [F]) — the same style of cross-validation the sync and
// async executors get, at the message level rather than the view level.

#include <functional>
#include <vector>

#include "core/semisync_complex.h"
#include "core/view.h"
#include "sim/trace.h"

namespace psph::sim {

/// Enumerates every one-round semi-synchronous execution from `inputs` with
/// at most `max_failures` crashes and `mu` microrounds, calling `visit`
/// with each complete trace (initial states + post-round survivor states).
void enumerate_semisync_round_executions(
    const std::vector<std::int64_t>& inputs, int max_failures, int mu,
    core::ViewRegistry& views, const std::function<void(const Trace&)>& visit);

}  // namespace psph::sim
