#include "sim/byzantine.h"

#include <algorithm>
#include <string>

namespace psph::sim {

RandomByzantineAdversary::RandomByzantineAdversary(
    const util::Rng& base, ByzAlphabet alphabet, int max_crashes,
    double defer_probability, double inject_probability,
    double forge_probability, double crash_probability)
    : base_(base),
      net_rng_(base.split("net")),
      crash_rng_(base.split("crash")),
      alphabet_(std::move(alphabet)),
      max_crashes_(max_crashes),
      defer_probability_(defer_probability),
      inject_probability_(inject_probability),
      forge_probability_(forge_probability),
      crash_probability_(crash_probability) {}

std::vector<ProcessId> RandomByzantineAdversary::corrupt(int num_processes,
                                                         int max_byzantine) {
  num_processes_ = num_processes;
  util::Rng rng = base_.split("corrupt");
  int count = std::min(max_byzantine, num_processes);
  if (count > 0 && rng.next_bool(0.25)) {
    // Occasionally corrupt fewer than the budget allows, so soaks also
    // cover the easier configurations.
    count = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(count + 1)));
  }
  const std::vector<int> picked =
      rng.sample_without_replacement(num_processes, count);
  corrupt_.assign(picked.begin(), picked.end());
  byz_rngs_.clear();
  muted_.clear();
  for (const ProcessId pid : corrupt_) {
    byz_rngs_.push_back(base_.split("byz/" + std::to_string(pid)));
    util::Rng mute_rng = base_.split("mute/" + std::to_string(pid));
    std::set<ProcessId> muted;
    for (ProcessId to = 0; to < num_processes; ++to) {
      if (mute_rng.next_bool(0.3)) muted.insert(to);
    }
    muted_.push_back(std::move(muted));
  }
  return corrupt_;
}

ByzRoundPlan RandomByzantineAdversary::plan_round(
    int round, const std::vector<PendingMessage>& in_flight,
    const std::vector<ProcessId>& alive, int crash_budget) {
  (void)round;
  ByzRoundPlan plan;

  // Network choices: defer any message; drop only crashed senders' ones.
  // The crash decisions come first so newly crashed senders' messages are
  // droppable in the same round.
  for (const ProcessId pid : alive) {
    if (plan.crash.size() < static_cast<std::size_t>(crash_budget) &&
        crash_rng_.next_bool(crash_probability_)) {
      plan.crash.push_back(pid);
    }
  }
  const auto crashed_now = [&](ProcessId pid) {
    return std::find(alive.begin(), alive.end(), pid) == alive.end() ||
           std::find(plan.crash.begin(), plan.crash.end(), pid) !=
               plan.crash.end();
  };
  const auto is_corrupt = [&](ProcessId pid) {
    return std::binary_search(corrupt_.begin(), corrupt_.end(), pid);
  };
  for (const PendingMessage& pending : in_flight) {
    if (!is_corrupt(pending.msg.from) && crashed_now(pending.msg.from) &&
        net_rng_.next_bool(0.5)) {
      plan.drop.push_back(pending.id);
    } else if (net_rng_.next_bool(defer_probability_)) {
      plan.defer.push_back(pending.id);
    }
  }

  // Per-corrupt-process injections, each from its own labeled stream.
  for (std::size_t i = 0; i < corrupt_.size(); ++i) {
    const ProcessId byz = corrupt_[i];
    util::Rng& rng = byz_rngs_[i];
    if (alphabet_.types.empty()) break;
    for (ProcessId to = 0; to < num_processes_; ++to) {
      if (muted_[i].count(to) != 0) continue;
      if (!rng.next_bool(inject_probability_)) continue;
      const auto& entry = rng.pick(alphabet_.types);
      ByzInject inject;
      inject.byz = byz;
      inject.claimed_from = byz;
      if (rng.next_bool(forge_probability_)) {
        inject.claimed_from = static_cast<ProcessId>(
            rng.next_below(static_cast<std::uint64_t>(num_processes_)));
      }
      inject.to = to;
      inject.type = entry.first;
      inject.value = entry.second.empty() ? 0 : rng.pick(entry.second);
      const auto key = std::make_tuple(inject.claimed_from, inject.to,
                                       inject.type, inject.value);
      if (inject.claimed_from == byz && !injected_.insert(key).second) {
        continue;  // duplicate of an earlier (kept) injection: no effect
      }
      plan.inject.push_back(inject);
    }
  }
  return plan;
}

}  // namespace psph::sim
