#pragma once

// Deterministic round-based executor for quorum/broadcast protocols under
// a ByzantineAdversary and an optional FailureDetector oracle.
//
// Execution model (one run):
//
//   1. The adversary picks the corrupt set (<= max_byzantine). Corrupt
//      processes execute no protocol code; their behavior is whatever the
//      adversary injects on their behalf.
//   2. Start phase: every correct process emits its initial broadcasts.
//      A broadcast fans out into num_processes point-to-point messages
//      with ids assigned in creation order (stable across replay).
//   3. Rounds 1..max_rounds: the adversary sees the in-flight messages
//      and plans the round — crash correct processes (within max_crashes),
//      drop crashed senders' messages, defer any message, inject on
//      behalf of corrupt processes. Forged-sender injections
//      (claimed_from != byz) are rejected by the authenticated channels
//      and counted. Everything not deferred/dropped is delivered to
//      alive correct receivers, then each alive process is fed its
//      failure-detector view (if an oracle is attached) and stepped; new
//      broadcasts join the in-flight set.
//   4. Drain phase: past max_rounds the adversary loses control — empty
//      plans, so every remaining message is delivered promptly. The run
//      is quiescent once no messages are in flight, no process sends, and
//      the detector has settled past the last crash; this makes eventual
//      properties (liveness under fairness) checkable as predicates on a
//      finite trace. A hard cap bounds non-terminating protocols, which
//      finish with quiescent == false.
//
// The executor validates every adversary choice (unknown message ids,
// crashing a corrupt process, dropping a live sender's message, injecting
// for a non-corrupt process all throw std::logic_error) so that recorded
// schedules can only contain plans that actually mean something.

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include "sim/byzantine.h"
#include "sim/failure_detector.h"
#include "sim/trace.h"

namespace psph::sim {

struct QuorumConfig {
  int num_processes = 4;
  /// Upper bound on |corrupt set| the adversary may pick.
  int max_byzantine = 1;
  /// Upper bound on crash-stop failures of *correct* processes.
  int max_crashes = 0;
  /// Rounds under adversary control before the drain phase.
  int max_rounds = 48;
};

struct QuorumBroadcast {
  std::uint8_t type = 0;
  std::int64_t value = 0;
};

/// Protocol-side interface. deliver() only accumulates state; sends are
/// emitted by step(), which should run the local transition to fixpoint.
class QuorumProcess {
 public:
  virtual ~QuorumProcess() = default;

  virtual void start(std::vector<QuorumBroadcast>& out) = 0;
  virtual void deliver(ProcessId from, std::uint8_t type,
                       std::int64_t value) = 0;
  /// Current failure-detector output for this process (full suspect set,
  /// not a delta). Only called when an oracle is attached.
  virtual void suspect(const std::vector<ProcessId>& suspected) {
    (void)suspected;
  }
  virtual void step(int round, std::vector<QuorumBroadcast>& out) = 0;
  virtual std::optional<std::int64_t> decision() const = 0;
};

struct QuorumTrace {
  std::vector<ProcessId> corrupt;
  /// (pid, round) crash-stop events among correct processes.
  std::vector<std::pair<ProcessId, int>> crashes;
  std::vector<DecisionEvent> decisions;
  /// Per receiver: the set of authenticated (sender, type, value) triples
  /// it was ever delivered — what monitors audit certificates against.
  std::vector<std::set<std::tuple<ProcessId, std::uint8_t, std::int64_t>>>
      delivered;
  int rounds = 0;
  bool quiescent = false;
  /// Forged-sender injections rejected by the channels.
  int forged_dropped = 0;
  int messages_delivered = 0;

  bool operator==(const QuorumTrace&) const = default;
};

/// Runs the protocol to quiescence (or the hard cap). `processes` must
/// have num_processes entries; entries at corrupt positions are never
/// touched (and may be null).
QuorumTrace run_quorum(const QuorumConfig& config,
                       std::vector<std::unique_ptr<QuorumProcess>>& processes,
                       ByzantineAdversary& adversary,
                       FailureDetector* detector = nullptr);

}  // namespace psph::sim
