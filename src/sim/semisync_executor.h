#pragma once

// Discrete-event semi-synchronous executor (Section 8's timing model).
//
// Time is an integer microtick count. Every process takes steps whose
// spacing the adversary picks in [c1, c2]; every message is delivered with
// a delay the adversary picks in [1, d]; processes may crash between steps
// (a crashed process stops stepping; its in-flight messages still arrive).
// On each step a process first consumes all messages that have arrived
// since its previous step, then acts. C = c2/c1 is the timing-uncertainty
// ratio of Corollary 22.
//
// Protocols are event-driven objects (one clone per process) talking to the
// executor through ProcessApi. The executor records decision times, which
// the Corollary-22 bench compares against the ⌊f/k⌋d + Cd bound.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "sim/trace.h"
#include "util/random.h"

namespace psph::sim {

struct SemiSyncConfig {
  Time c1 = 1;  // min step spacing
  Time c2 = 2;  // max step spacing
  Time d = 4;   // max message delay
  int num_processes = 3;
  Time max_time = 1'000'000;  // safety stop
};

struct SemiSyncMessage {
  ProcessId from = -1;
  ProcessId to = -1;
  std::map<ProcessId, std::int64_t> values;  // protocol payload
  int tag = 0;                               // protocol-defined (round #)
  Time sent_at = 0;
  Time delivered_at = 0;
};

/// The executor-provided capability surface for protocol code.
class ProcessApi {
 public:
  virtual ~ProcessApi() = default;
  virtual ProcessId self() const = 0;
  virtual Time now() const = 0;
  virtual std::int64_t input() const = 0;
  virtual int num_processes() const = 0;
  /// Sends to every process (including self, delivered like any message).
  virtual void broadcast(const std::map<ProcessId, std::int64_t>& values,
                         int tag) = 0;
  virtual void decide(std::int64_t value) = 0;
  virtual bool has_decided() const = 0;
};

class SemiSyncProtocol {
 public:
  virtual ~SemiSyncProtocol() = default;
  virtual void on_start(ProcessApi& api) = 0;
  virtual void on_message(ProcessApi& api, const SemiSyncMessage& msg) = 0;
  virtual void on_step(ProcessApi& api) = 0;
};

/// Factory: one protocol instance per process.
using ProtocolFactory = std::function<std::unique_ptr<SemiSyncProtocol>()>;

class SemiSyncAdversary {
 public:
  virtual ~SemiSyncAdversary() = default;
  /// Spacing to the process's next step, in [c1, c2].
  virtual Time step_spacing(ProcessId pid, Time now) = 0;
  /// Delivery delay for a message, in [1, d].
  virtual Time delivery_delay(const SemiSyncMessage& msg) = 0;
  /// If set, the process crashes at that time (checked before each step).
  virtual std::optional<Time> crash_time(ProcessId pid) = 0;
};

/// All processes step as fast (or slow) as configured; fixed delays;
/// scripted crashes. The deterministic workhorse for timing experiments.
class ScriptedSemiSyncAdversary : public SemiSyncAdversary {
 public:
  ScriptedSemiSyncAdversary(Time step, Time delay)
      : default_step_(step), default_delay_(delay) {}

  void set_step_spacing(ProcessId pid, Time spacing) {
    per_process_step_[pid] = spacing;
  }
  void set_crash(ProcessId pid, Time when) { crashes_[pid] = when; }

  Time step_spacing(ProcessId pid, Time now) override;
  Time delivery_delay(const SemiSyncMessage& msg) override;
  std::optional<Time> crash_time(ProcessId pid) override;

 private:
  Time default_step_;
  Time default_delay_;
  std::map<ProcessId, Time> per_process_step_;
  std::map<ProcessId, Time> crashes_;
};

/// Uniformly random spacings/delays within bounds; crashes drawn from a
/// budget with the given probability per process.
class RandomSemiSyncAdversary : public SemiSyncAdversary {
 public:
  RandomSemiSyncAdversary(util::Rng rng, const SemiSyncConfig& config,
                          int max_crashes, double crash_probability,
                          Time crash_horizon);

  Time step_spacing(ProcessId pid, Time now) override;
  Time delivery_delay(const SemiSyncMessage& msg) override;
  std::optional<Time> crash_time(ProcessId pid) override;

 private:
  util::Rng rng_;
  SemiSyncConfig config_;
  std::map<ProcessId, std::optional<Time>> crash_plan_;
};

struct SemiSyncResult {
  std::map<ProcessId, DecisionEvent> decisions;
  std::map<ProcessId, Time> crashes;
  Time finished_at = 0;
  bool all_alive_decided = false;
  std::size_t messages_delivered = 0;
  std::size_t steps_taken = 0;
};

/// Runs one execution to completion (all alive processes decided) or
/// max_time.
SemiSyncResult run_semisync(const std::vector<std::int64_t>& inputs,
                            const SemiSyncConfig& config,
                            const ProtocolFactory& factory,
                            SemiSyncAdversary& adversary);

}  // namespace psph::sim
