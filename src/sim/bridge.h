#pragma once

// Bridge from executor traces to protocol complexes.
//
// Each complete execution contributes one facet: the (pid, final state)
// vertices of the processes that survived to the end. Because executors and
// the theoretical constructions intern states in the same ViewRegistry and
// vertices in the same VertexArena, the complex built from an exhaustive
// trace enumeration can be compared with the constructed protocol complex
// by literal equality — the strongest possible cross-validation of the two
// code paths.

#include "sim/trace.h"
#include "topology/arena.h"
#include "topology/complex.h"

namespace psph::sim {

class TraceComplexBuilder {
 public:
  explicit TraceComplexBuilder(topology::VertexArena& arena)
      : arena_(&arena) {}

  /// Adds the facet of `trace`'s surviving final states. Traces where
  /// everyone crashed contribute nothing.
  void add(const Trace& trace);

  const topology::SimplicialComplex& complex() const { return complex_; }
  std::size_t traces_added() const { return traces_; }

 private:
  topology::VertexArena* arena_;
  topology::SimplicialComplex complex_;
  std::size_t traces_ = 0;
};

}  // namespace psph::sim
