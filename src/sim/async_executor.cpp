#include "sim/async_executor.h"

#include <algorithm>
#include <stdexcept>

#include "math/combinatorics.h"

namespace psph::sim {

namespace {

std::vector<ProcessId> resolve_participants(const AsyncRunConfig& config) {
  if (!config.participants.empty()) {
    std::vector<ProcessId> result = config.participants;
    std::sort(result.begin(), result.end());
    return result;
  }
  std::vector<ProcessId> result;
  for (int p = 0; p < config.num_processes; ++p) result.push_back(p);
  return result;
}

std::map<ProcessId, StateId> initial_states(
    const std::vector<std::int64_t>& inputs,
    const std::vector<ProcessId>& participants, core::ViewRegistry& views) {
  std::map<ProcessId, StateId> current;
  for (ProcessId p : participants) {
    if (p < 0 || static_cast<std::size_t>(p) >= inputs.size()) {
      throw std::invalid_argument("async: participant without input");
    }
    current[p] = views.intern_input(p, inputs[static_cast<std::size_t>(p)]);
  }
  return current;
}

std::map<ProcessId, StateId> step_round(
    const std::map<ProcessId, StateId>& current,
    const std::map<ProcessId, std::set<ProcessId>>& heard_sets, int round,
    core::ViewRegistry& views) {
  std::map<ProcessId, StateId> next;
  for (const auto& [receiver, state] : current) {
    (void)state;
    const std::set<ProcessId>& heard_from = heard_sets.at(receiver);
    std::vector<core::HeardEntry> heard;
    for (ProcessId sender : heard_from) {
      heard.push_back({sender, current.at(sender), core::kNoMicro});
    }
    next[receiver] = views.intern_round(receiver, round, std::move(heard));
  }
  return next;
}

}  // namespace

Trace run_async(const std::vector<std::int64_t>& inputs,
                const AsyncRunConfig& config, AsyncAdversary& adversary,
                core::ViewRegistry& views) {
  const std::vector<ProcessId> participants = resolve_participants(config);
  const int min_heard = config.num_processes - config.max_failures;
  if (static_cast<int>(participants.size()) < min_heard) {
    throw std::invalid_argument(
        "run_async: too few participants for the failure bound");
  }
  Trace trace;
  trace.states.push_back(initial_states(inputs, participants, views));
  trace.crashed_in.push_back({});
  for (int round = 1; round <= config.rounds; ++round) {
    const AsyncRoundPlan plan =
        adversary.plan_round(round, participants, min_heard);
    // Reject malformed plans with a distinct error per defect; `participants`
    // is sorted (resolve_participants), so membership is a binary search.
    for (ProcessId p : participants) {
      const auto it = plan.heard.find(p);
      if (it == plan.heard.end()) {
        throw std::logic_error(
            "async adversary omitted a participant's heard-set");
      }
      if (static_cast<int>(it->second.size()) < min_heard) {
        throw std::logic_error(
            "async adversary heard-set smaller than n+1-f");
      }
      if (it->second.count(p) == 0) {
        throw std::logic_error(
            "async adversary dropped a process's own message");
      }
      for (ProcessId sender : it->second) {
        if (!std::binary_search(participants.begin(), participants.end(),
                                sender)) {
          throw std::logic_error(
              "async adversary delivered from a non-participant");
        }
      }
    }
    trace.states.push_back(
        step_round(trace.states.back(), plan.heard, round, views));
    trace.crashed_in.push_back({});
  }
  return trace;
}

void enumerate_async_executions(
    const std::vector<std::int64_t>& inputs, const AsyncRunConfig& config,
    core::ViewRegistry& views,
    const std::function<void(const Trace&)>& visit) {
  const std::vector<ProcessId> participants = resolve_participants(config);
  const int min_heard = config.num_processes - config.max_failures;
  if (static_cast<int>(participants.size()) < min_heard) return;

  // Precompute per-process admissible heard-sets (self + >= min_heard - 1
  // others).
  std::vector<std::vector<std::set<ProcessId>>> options;
  for (ProcessId receiver : participants) {
    std::vector<ProcessId> others;
    for (ProcessId p : participants) {
      if (p != receiver) others.push_back(p);
    }
    std::vector<std::set<ProcessId>> sets;
    for (const std::vector<ProcessId>& subset :
         math::subsets_with_size_between(
             others, std::max(min_heard - 1, 0),
             static_cast<int>(others.size()))) {
      std::set<ProcessId> heard(subset.begin(), subset.end());
      heard.insert(receiver);
      sets.push_back(std::move(heard));
    }
    options.push_back(std::move(sets));
  }

  Trace trace;
  trace.states.push_back(initial_states(inputs, participants, views));
  trace.crashed_in.push_back({});

  const std::function<void(int)> recurse = [&](int round) {
    if (round > config.rounds) {
      visit(trace);
      return;
    }
    std::vector<std::size_t> sizes;
    for (const auto& sets : options) sizes.push_back(sets.size());
    math::for_each_product(sizes, [&](const std::vector<std::size_t>& odo) {
      std::map<ProcessId, std::set<ProcessId>> heard_sets;
      for (std::size_t i = 0; i < participants.size(); ++i) {
        heard_sets[participants[i]] = options[i][odo[i]];
      }
      trace.states.push_back(
          step_round(trace.states.back(), heard_sets, round, views));
      trace.crashed_in.push_back({});
      recurse(round + 1);
      trace.states.pop_back();
      trace.crashed_in.pop_back();
    });
  };
  recurse(1);
}

}  // namespace psph::sim
