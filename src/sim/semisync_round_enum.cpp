#include "sim/semisync_round_enum.h"

#include <algorithm>
#include <map>

#include "math/combinatorics.h"

namespace psph::sim {

void enumerate_semisync_round_executions(
    const std::vector<std::int64_t>& inputs, int max_failures, int mu,
    core::ViewRegistry& views,
    const std::function<void(const Trace&)>& visit) {
  const int n1 = static_cast<int>(inputs.size());
  std::vector<ProcessId> pids;
  std::map<ProcessId, StateId> initial;
  for (int p = 0; p < n1; ++p) {
    pids.push_back(p);
    initial[p] = views.intern_input(p, inputs[static_cast<std::size_t>(p)]);
  }

  for (const core::FailurePattern& pattern :
       core::enumerate_failure_patterns(pids, max_failures, mu)) {
    std::vector<ProcessId> survivors;
    for (ProcessId p : pids) {
      if (!std::binary_search(pattern.fail_set.begin(),
                              pattern.fail_set.end(), p)) {
        survivors.push_back(p);
      }
    }
    if (survivors.empty()) continue;

    // Per (survivor, crasher) independent bit: does the crasher's final
    // microround message reach this survivor in time? Enumerate the whole
    // cross product.
    const std::size_t bits = survivors.size() * pattern.fail_set.size();
    std::vector<std::size_t> sizes(bits, 2);
    if (bits == 0) sizes.clear();
    math::for_each_product(sizes, [&](const std::vector<std::size_t>& odo) {
      // Message-level simulation: in microround u (1..mu), every process
      // still alive at u sends; a process with F(p) = u sends its
      // microround-u message only to the receivers whose choice bit says
      // "delivered". Track, per receiver, the last microround heard per
      // sender.
      std::map<ProcessId, std::map<ProcessId, int>> last_heard;
      for (ProcessId receiver : survivors) {
        for (int u = 1; u <= mu; ++u) {
          // Survivor senders are alive through all microrounds.
          for (ProcessId sender : survivors) {
            last_heard[receiver][sender] = u;
          }
          for (std::size_t i = 0; i < pattern.fail_set.size(); ++i) {
            const ProcessId sender = pattern.fail_set[i];
            const int crash_at = pattern.fail_micro[i];
            if (u < crash_at) {
              last_heard[receiver][sender] = u;
            } else if (u == crash_at) {
              // The final message: delivered iff the choice bit is set.
              const std::size_t r_index = static_cast<std::size_t>(
                  std::find(survivors.begin(), survivors.end(), receiver) -
                  survivors.begin());
              const std::size_t bit =
                  r_index * pattern.fail_set.size() + i;
              if (odo[bit] == 1) last_heard[receiver][sender] = u;
            }
          }
        }
      }

      Trace trace;
      trace.states.push_back(initial);
      trace.crashed_in.push_back({});
      std::map<ProcessId, StateId> next;
      for (ProcessId receiver : survivors) {
        std::vector<core::HeardEntry> heard;
        for (const auto& [sender, micro] : last_heard[receiver]) {
          heard.push_back({sender, initial.at(sender), micro});
        }
        next[receiver] = views.intern_round(receiver, 1, std::move(heard));
      }
      trace.states.push_back(std::move(next));
      trace.crashed_in.push_back(pattern.fail_set);
      visit(trace);
    });
  }
}

}  // namespace psph::sim
