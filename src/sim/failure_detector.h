#pragma once

// Pluggable failure-detector oracles (Chandra–Toueg style).
//
// A failure detector is an oracle each process queries once per round of
// the quorum executor; it answers with the set of processes the querier
// currently suspects of having crashed. The oracle — not the querier —
// decides how truthful that answer is, which is exactly what makes it a
// *model* parameter in the paper's sense: the same protocol code runs
// under different detectors and solves (or stops solving) the task.
//
// Two concrete oracles:
//
//   * SomeFailDetector — the `someFail`-style detector of the NBAC
//     exemplar (Guerraoui 2001): strongly accurate (never suspects a
//     process that has not crashed) and eventually complete (every crash
//     becomes visible to every observer within a seed-chosen per-pair lag
//     of at most max_lag rounds).
//
//   * EventuallyStrongDetector — a ◇S-style detector: before a seed-chosen
//     stabilization round it may also *falsely* suspect live processes;
//     from the stabilization round on it behaves like SomeFailDetector
//     with lag 0 (complete and accurate). The unreliable prefix is what
//     lets soaks exhibit Guerraoui's hardness result for NBAC.
//
// Both are deterministic functions of their seed and the call sequence;
// the check layer wraps them in recording/replay shims so every answer
// lands in the run's Schedule choice-by-choice.

#include <cstdint>
#include <map>
#include <vector>

#include "sim/trace.h"
#include "util/random.h"

namespace psph::sim {

class FailureDetector {
 public:
  virtual ~FailureDetector() = default;

  /// The processes `observer` suspects at round `round`, given the set
  /// that has actually crashed so far (sorted). The executor queries every
  /// alive process in ascending pid order each round, so implementations
  /// may key internal state on the call sequence deterministically.
  virtual std::vector<ProcessId> suspects(
      ProcessId observer, int round,
      const std::vector<ProcessId>& crashed) = 0;

  /// Rounds after the last crash by which every implementation promise
  /// (completeness, post-stabilization accuracy) is guaranteed to have
  /// kicked in; the executor keeps stepping at least this far past the
  /// last crash before declaring quiescence.
  virtual int settle_rounds() const = 0;
};

/// `someFail`-style detector: strongly accurate, eventually complete.
/// Each (observer, crashed-process) pair gets an independent lag drawn
/// uniformly from [0, max_lag] the first time the observer could learn of
/// the crash; the suspicion appears once the lag elapses and is permanent.
class SomeFailDetector : public FailureDetector {
 public:
  explicit SomeFailDetector(util::Rng rng, int max_lag = 2);

  std::vector<ProcessId> suspects(
      ProcessId observer, int round,
      const std::vector<ProcessId>& crashed) override;

  int settle_rounds() const override { return max_lag_ + 1; }

 private:
  util::Rng rng_;
  int max_lag_;
  /// (observer, crashed pid) -> round from which the suspicion is visible.
  std::map<std::pair<ProcessId, ProcessId>, int> visible_from_;
};

/// ◇S-style detector: an unreliable prefix of false suspicions, then
/// stabilization. The stabilization round is drawn once from
/// [0, max_unstable_rounds]; before it, each query may falsely suspect a
/// seed-chosen subset of live processes (alongside the real crashes, lag
/// 0); from it on, answers are exactly the crashed set.
class EventuallyStrongDetector : public FailureDetector {
 public:
  EventuallyStrongDetector(util::Rng rng, int num_processes,
                           int max_unstable_rounds = 4,
                           double false_suspicion_probability = 0.2);

  std::vector<ProcessId> suspects(
      ProcessId observer, int round,
      const std::vector<ProcessId>& crashed) override;

  int settle_rounds() const override { return stabilization_round_ + 1; }
  int stabilization_round() const { return stabilization_round_; }

 private:
  util::Rng rng_;
  int num_processes_;
  int stabilization_round_;
  double false_suspicion_probability_;
};

}  // namespace psph::sim
