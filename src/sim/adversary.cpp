#include "sim/adversary.h"

#include <algorithm>

namespace psph::sim {

RandomSyncAdversary::RandomSyncAdversary(util::Rng rng,
                                         int max_total_failures,
                                         double crash_probability)
    : rng_(rng),
      budget_(max_total_failures),
      crash_probability_(crash_probability) {}

SyncRoundPlan RandomSyncAdversary::plan_round(
    int round, const std::vector<ProcessId>& alive) {
  (void)round;
  SyncRoundPlan plan;
  for (ProcessId p : alive) {
    if (budget_ > 0 && static_cast<int>(alive.size()) -
                               static_cast<int>(plan.crash.size()) >
                           1 &&
        rng_.next_bool(crash_probability_)) {
      plan.crash.push_back(p);
      --budget_;
    }
  }
  std::vector<ProcessId> survivors;
  for (ProcessId p : alive) {
    if (std::find(plan.crash.begin(), plan.crash.end(), p) ==
        plan.crash.end()) {
      survivors.push_back(p);
    }
  }
  for (ProcessId crasher : plan.crash) {
    std::set<ProcessId> receivers;
    for (ProcessId s : survivors) {
      if (rng_.next_bool(0.5)) receivers.insert(s);
    }
    plan.delivered_to[crasher] = std::move(receivers);
  }
  return plan;
}

AsyncRoundPlan RandomAsyncAdversary::plan_round(
    int round, const std::vector<ProcessId>& participants, int min_heard) {
  (void)round;
  AsyncRoundPlan plan;
  const int total = static_cast<int>(participants.size());
  for (ProcessId receiver : participants) {
    // Choose a heard-set size in [min_heard, total], then a uniform subset
    // of the others of size - 1 (self is always included).
    const int low = std::max(min_heard, 1);
    const int size = static_cast<int>(rng_.next_in(low, total));
    std::vector<ProcessId> others;
    for (ProcessId p : participants) {
      if (p != receiver) others.push_back(p);
    }
    rng_.shuffle(others);
    std::set<ProcessId> heard{receiver};
    for (int i = 0; i < size - 1; ++i) {
      heard.insert(others[static_cast<std::size_t>(i)]);
    }
    plan.heard[receiver] = std::move(heard);
  }
  return plan;
}

}  // namespace psph::sim
