#include "sim/trace.h"

#include <sstream>

namespace psph::sim {

std::optional<StateId> Trace::final_state(ProcessId pid) const {
  if (states.empty()) return std::nullopt;
  const auto& last = states.back();
  const auto it = last.find(pid);
  if (it == last.end()) return std::nullopt;
  return it->second;
}

std::string Trace::to_string(const core::ViewRegistry& views) const {
  std::ostringstream out;
  for (std::size_t r = 0; r < states.size(); ++r) {
    out << "round " << r << ":";
    for (const auto& [pid, state] : states[r]) {
      out << " " << views.to_string(state);
    }
    if (r < crashed_in.size() && !crashed_in[r].empty()) {
      out << " crashed{";
      for (std::size_t i = 0; i < crashed_in[r].size(); ++i) {
        if (i > 0) out << ",";
        out << "P" << crashed_in[r][i];
      }
      out << "}";
    }
    out << "\n";
  }
  for (const DecisionEvent& d : decisions) {
    out << "P" << d.pid << " decides " << d.value << " (round " << d.round
        << ", t=" << d.time << ")\n";
  }
  return out.str();
}

}  // namespace psph::sim
