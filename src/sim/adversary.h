#pragma once

// Adversary interfaces for the executors.
//
// The synchronous adversary picks, per round, which processes crash and
// which of each crasher's messages are still delivered. The asynchronous
// (round-based) adversary picks each process's heard-set. Both have random
// implementations (seeded, for property tests and protocol soak tests);
// exhaustive enumeration lives in the executors themselves because it
// drives the whole cross-product of choices, not one execution.

#include <map>
#include <set>
#include <vector>

#include "sim/trace.h"
#include "util/random.h"

namespace psph::sim {

/// One round of synchronous-adversary choices.
struct SyncRoundPlan {
  /// Processes crashing this round (subset of the currently alive).
  std::vector<ProcessId> crash;
  /// For each crashing process, the survivors that still receive its
  /// round message.
  std::map<ProcessId, std::set<ProcessId>> delivered_to;

  bool operator==(const SyncRoundPlan&) const = default;
};

class SyncAdversary {
 public:
  virtual ~SyncAdversary() = default;
  virtual SyncRoundPlan plan_round(int round,
                                   const std::vector<ProcessId>& alive) = 0;
};

/// Crashes each alive process with probability `crash_probability` while a
/// failure budget remains; each crasher's message reaches an independent
/// random subset of survivors.
class RandomSyncAdversary : public SyncAdversary {
 public:
  RandomSyncAdversary(util::Rng rng, int max_total_failures,
                      double crash_probability = 0.3);

  SyncRoundPlan plan_round(int round,
                           const std::vector<ProcessId>& alive) override;

 private:
  util::Rng rng_;
  int budget_;
  double crash_probability_;
};

/// One round of asynchronous-adversary choices: per process, the set of
/// processes whose round messages it receives (must contain itself and have
/// size >= num_processes - max_failures).
struct AsyncRoundPlan {
  std::map<ProcessId, std::set<ProcessId>> heard;

  bool operator==(const AsyncRoundPlan&) const = default;
};

class AsyncAdversary {
 public:
  virtual ~AsyncAdversary() = default;
  virtual AsyncRoundPlan plan_round(int round,
                                    const std::vector<ProcessId>& participants,
                                    int min_heard) = 0;
};

/// Picks each process's heard-set uniformly among admissible sets.
class RandomAsyncAdversary : public AsyncAdversary {
 public:
  explicit RandomAsyncAdversary(util::Rng rng) : rng_(rng) {}

  AsyncRoundPlan plan_round(int round,
                            const std::vector<ProcessId>& participants,
                            int min_heard) override;

 private:
  util::Rng rng_;
};

}  // namespace psph::sim
