#pragma once

// Byzantine/message adversary for the quorum executor.
//
// The crash-only adversaries (adversary.h) choose who crashes and what
// still gets delivered. A ByzantineAdversary controls strictly more:
//
//   * corruption — before the run it picks up to T processes to corrupt;
//     corrupted processes run no protocol code at all, their observable
//     behavior *is* the adversary's injection stream;
//   * equivocation — an injection names a single receiver, so a corrupt
//     process can tell different receivers different things (or nothing);
//   * selective silence — simply not injecting to some receivers;
//   * forged-sender drops — an injection whose claimed sender differs from
//     the corrupt process is rejected by the (authenticated) channels; the
//     executor counts the drop so monitors can assert forgeries never
//     reach a quorum certificate;
//   * asynchrony — per round it may defer any in-flight message (eventual
//     delivery is forced by the executor's drain phase);
//   * crash-stop failures — for the crash+failure-detector protocols it
//     may crash up to `max_crashes` correct processes and selectively drop
//     their in-flight messages (only crashed senders' messages may drop).
//
// Every choice is a plain value (ByzRoundPlan / the corrupt set), which is
// what the check layer records into a Schedule and replays bit-for-bit.

#include <cstdint>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/trace.h"
#include "util/random.h"

namespace psph::sim {

/// One point-to-point message waiting in the network. Ids are assigned in
/// creation order by the executor and are stable across replay.
struct QuorumMessage {
  ProcessId from = -1;
  ProcessId to = -1;
  std::uint8_t type = 0;
  std::int64_t value = 0;

  bool operator==(const QuorumMessage&) const = default;
};

struct PendingMessage {
  std::uint32_t id = 0;
  QuorumMessage msg;

  bool operator==(const PendingMessage&) const = default;
};

/// One injection attempt by a corrupt process. `claimed_from != byz` is a
/// forged-sender attempt; authenticated channels drop it (and the executor
/// records that they did).
struct ByzInject {
  ProcessId byz = -1;
  ProcessId claimed_from = -1;
  ProcessId to = -1;
  std::uint8_t type = 0;
  std::int64_t value = 0;

  bool operator==(const ByzInject&) const = default;
};

/// One round of Byzantine-adversary choices.
struct ByzRoundPlan {
  /// In-flight message ids held back this round (delivered later; the
  /// drain phase delivers everything, so deferral is finite asynchrony).
  std::vector<std::uint32_t> defer;
  /// In-flight message ids dropped outright; only messages whose sender
  /// has crashed (this round or earlier) may be dropped.
  std::vector<std::uint32_t> drop;
  std::vector<ByzInject> inject;
  /// Correct processes crash-stopping this round (within max_crashes).
  std::vector<ProcessId> crash;

  bool empty() const {
    return defer.empty() && drop.empty() && inject.empty() && crash.empty();
  }
  bool operator==(const ByzRoundPlan&) const = default;
};

class ByzantineAdversary {
 public:
  virtual ~ByzantineAdversary() = default;

  /// Called once before the run: which processes to corrupt (size <=
  /// max_byzantine, each in [0, num_processes), strictly increasing).
  virtual std::vector<ProcessId> corrupt(int num_processes,
                                         int max_byzantine) = 0;

  /// Per-round choices. `in_flight` lists the deliverable messages with
  /// their stable ids; `alive` is the sorted set of correct, non-crashed
  /// processes; `crash_budget` is how many more crashes are allowed.
  virtual ByzRoundPlan plan_round(int round,
                                  const std::vector<PendingMessage>& in_flight,
                                  const std::vector<ProcessId>& alive,
                                  int crash_budget) = 0;
};

/// The message alphabet a random adversary may inject from: each entry is
/// a (type, candidate values) pair, protocol-specific.
struct ByzAlphabet {
  std::vector<std::pair<std::uint8_t, std::vector<std::int64_t>>> types;
};

/// Seed-driven adversary. The corrupt set, per-corrupt-process injection
/// streams, the network (defer/drop) stream, and the crash stream are all
/// derived from the base seed via independent labeled sub-streams
/// (util::Rng::split(label)), so one component drawing more values never
/// shifts another component's choices.
class RandomByzantineAdversary : public ByzantineAdversary {
 public:
  RandomByzantineAdversary(const util::Rng& base, ByzAlphabet alphabet,
                           int max_crashes = 0,
                           double defer_probability = 0.25,
                           double inject_probability = 0.35,
                           double forge_probability = 0.05,
                           double crash_probability = 0.2);

  std::vector<ProcessId> corrupt(int num_processes,
                                 int max_byzantine) override;

  ByzRoundPlan plan_round(int round,
                          const std::vector<PendingMessage>& in_flight,
                          const std::vector<ProcessId>& alive,
                          int crash_budget) override;

 private:
  util::Rng base_;
  util::Rng net_rng_;
  util::Rng crash_rng_;
  ByzAlphabet alphabet_;
  int num_processes_ = 0;
  int max_crashes_;
  double defer_probability_;
  double inject_probability_;
  double forge_probability_;
  double crash_probability_;
  std::vector<ProcessId> corrupt_;
  std::vector<util::Rng> byz_rngs_;  // parallel to corrupt_
  /// Per corrupt process: receivers it stays silent towards for the whole
  /// run (drawn once at corruption time). Persistent selective silence is
  /// what actually breaks quorum protocols at the resilience boundary —
  /// round-local coin flips always relent eventually.
  std::vector<std::set<ProcessId>> muted_;  // parallel to corrupt_
  /// Injections already made, to keep schedules finite (protocols count
  /// distinct senders, so repeats add nothing).
  std::set<std::tuple<ProcessId, ProcessId, std::uint8_t, std::int64_t>>
      injected_;
};

}  // namespace psph::sim
