#include "sim/semisync_executor.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace psph::sim {

Time ScriptedSemiSyncAdversary::step_spacing(ProcessId pid, Time now) {
  (void)now;
  const auto it = per_process_step_.find(pid);
  return it == per_process_step_.end() ? default_step_ : it->second;
}

Time ScriptedSemiSyncAdversary::delivery_delay(const SemiSyncMessage& msg) {
  (void)msg;
  return default_delay_;
}

std::optional<Time> ScriptedSemiSyncAdversary::crash_time(ProcessId pid) {
  const auto it = crashes_.find(pid);
  if (it == crashes_.end()) return std::nullopt;
  return it->second;
}

RandomSemiSyncAdversary::RandomSemiSyncAdversary(util::Rng rng,
                                                 const SemiSyncConfig& config,
                                                 int max_crashes,
                                                 double crash_probability,
                                                 Time crash_horizon)
    : rng_(rng), config_(config) {
  int budget = max_crashes;
  for (int p = 0; p < config.num_processes; ++p) {
    if (budget > 0 && rng_.next_bool(crash_probability)) {
      crash_plan_[p] = rng_.next_in(1, std::max<Time>(crash_horizon, 1));
      --budget;
    } else {
      crash_plan_[p] = std::nullopt;
    }
  }
}

Time RandomSemiSyncAdversary::step_spacing(ProcessId pid, Time now) {
  (void)pid;
  (void)now;
  return rng_.next_in(config_.c1, config_.c2);
}

Time RandomSemiSyncAdversary::delivery_delay(const SemiSyncMessage& msg) {
  (void)msg;
  return rng_.next_in(1, config_.d);
}

std::optional<Time> RandomSemiSyncAdversary::crash_time(ProcessId pid) {
  return crash_plan_.at(pid);
}

namespace {

enum class EventKind { step, delivery };

struct Event {
  Time time = 0;
  EventKind kind = EventKind::step;
  std::uint64_t seq = 0;  // FIFO tie-break for determinism
  ProcessId pid = -1;     // stepping process (step events)
  SemiSyncMessage message;  // delivery events
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    // Deliveries before steps at the same instant so a step sees everything
    // that has arrived "by" its time.
    if (a.kind != b.kind) return a.kind == EventKind::step;
    return a.seq > b.seq;
  }
};

class Api final : public ProcessApi {
 public:
  Api(ProcessId self, std::int64_t input, int num_processes)
      : self_(self), input_(input), num_processes_(num_processes) {}

  ProcessId self() const override { return self_; }
  Time now() const override { return now_; }
  std::int64_t input() const override { return input_; }
  int num_processes() const override { return num_processes_; }

  void broadcast(const std::map<ProcessId, std::int64_t>& values,
                 int tag) override {
    for (int to = 0; to < num_processes_; ++to) {
      SemiSyncMessage msg;
      msg.from = self_;
      msg.to = to;
      msg.values = values;
      msg.tag = tag;
      msg.sent_at = now_;
      outbox_.push_back(std::move(msg));
    }
  }

  void decide(std::int64_t value) override {
    if (decided_) return;  // first decision sticks
    decided_ = true;
    decision_ = value;
  }

  bool has_decided() const override { return decided_; }

  // Executor-side accessors.
  void set_now(Time t) { now_ = t; }
  std::vector<SemiSyncMessage> take_outbox() { return std::move(outbox_); }
  bool decided() const { return decided_; }
  std::int64_t decision() const { return decision_; }

 private:
  ProcessId self_;
  std::int64_t input_;
  int num_processes_;
  Time now_ = 0;
  bool decided_ = false;
  std::int64_t decision_ = 0;
  std::vector<SemiSyncMessage> outbox_;
};

}  // namespace

SemiSyncResult run_semisync(const std::vector<std::int64_t>& inputs,
                            const SemiSyncConfig& config,
                            const ProtocolFactory& factory,
                            SemiSyncAdversary& adversary) {
  if (static_cast<int>(inputs.size()) != config.num_processes) {
    throw std::invalid_argument("run_semisync: inputs size mismatch");
  }
  if (config.c1 < 1 || config.c2 < config.c1 || config.d < 1) {
    throw std::invalid_argument("run_semisync: bad timing constants");
  }

  SemiSyncResult result;
  std::vector<std::unique_ptr<SemiSyncProtocol>> protocols;
  std::vector<std::unique_ptr<Api>> apis;
  std::vector<std::optional<Time>> crash_at;
  std::vector<bool> recorded_decision(
      static_cast<std::size_t>(config.num_processes), false);
  std::vector<std::vector<SemiSyncMessage>> inbox(
      static_cast<std::size_t>(config.num_processes));

  std::priority_queue<Event, std::vector<Event>, EventLater> queue;
  std::uint64_t seq = 0;

  const auto flush_outbox = [&](Api& api) {
    for (SemiSyncMessage& msg : api.take_outbox()) {
      const Time delay = adversary.delivery_delay(msg);
      if (delay < 1 || delay > config.d) {
        throw std::logic_error("adversary delivery delay out of range");
      }
      msg.delivered_at = msg.sent_at + delay;
      Event event;
      event.time = msg.delivered_at;
      event.kind = EventKind::delivery;
      event.seq = ++seq;
      event.message = std::move(msg);
      queue.push(std::move(event));
    }
  };

  for (int p = 0; p < config.num_processes; ++p) {
    protocols.push_back(factory());
    apis.push_back(std::make_unique<Api>(
        p, inputs[static_cast<std::size_t>(p)], config.num_processes));
    crash_at.push_back(adversary.crash_time(p));
    if (crash_at.back().has_value()) {
      result.crashes[p] = *crash_at.back();
    }
  }

  // Time 0: every process starts (unless it crashes at 0) and its first
  // step is scheduled.
  for (int p = 0; p < config.num_processes; ++p) {
    Api& api = *apis[static_cast<std::size_t>(p)];
    if (crash_at[static_cast<std::size_t>(p)].has_value() &&
        *crash_at[static_cast<std::size_t>(p)] <= 0) {
      continue;
    }
    api.set_now(0);
    protocols[static_cast<std::size_t>(p)]->on_start(api);
    flush_outbox(api);
    const Time spacing = adversary.step_spacing(p, 0);
    if (spacing < config.c1 || spacing > config.c2) {
      throw std::logic_error("adversary step spacing out of range");
    }
    Event event;
    event.time = spacing;
    event.kind = EventKind::step;
    event.seq = ++seq;
    event.pid = p;
    queue.push(std::move(event));
  }

  const auto is_crashed = [&](ProcessId p, Time t) {
    return crash_at[static_cast<std::size_t>(p)].has_value() &&
           *crash_at[static_cast<std::size_t>(p)] <= t;
  };

  const auto all_done = [&]() {
    for (int p = 0; p < config.num_processes; ++p) {
      if (is_crashed(p, config.max_time)) continue;
      if (!apis[static_cast<std::size_t>(p)]->decided()) return false;
    }
    return true;
  };

  Time now = 0;
  while (!queue.empty()) {
    Event event = queue.top();
    queue.pop();
    now = event.time;
    if (now > config.max_time) break;

    if (event.kind == EventKind::delivery) {
      const ProcessId to = event.message.to;
      ++result.messages_delivered;
      if (!is_crashed(to, now)) {
        inbox[static_cast<std::size_t>(to)].push_back(
            std::move(event.message));
      }
      continue;
    }

    const ProcessId p = event.pid;
    if (is_crashed(p, now)) continue;
    Api& api = *apis[static_cast<std::size_t>(p)];
    api.set_now(now);
    ++result.steps_taken;
    // Consume arrived messages (already filtered to delivered_at <= now by
    // the queue ordering), then take the step.
    std::vector<SemiSyncMessage> arrived =
        std::move(inbox[static_cast<std::size_t>(p)]);
    inbox[static_cast<std::size_t>(p)].clear();
    for (const SemiSyncMessage& msg : arrived) {
      protocols[static_cast<std::size_t>(p)]->on_message(api, msg);
    }
    protocols[static_cast<std::size_t>(p)]->on_step(api);
    flush_outbox(api);

    if (api.decided() && !recorded_decision[static_cast<std::size_t>(p)]) {
      recorded_decision[static_cast<std::size_t>(p)] = true;
      DecisionEvent decision;
      decision.pid = p;
      decision.value = api.decision();
      decision.time = now;
      result.decisions[p] = decision;
    }

    if (all_done()) break;

    if (!api.decided() || !all_done()) {
      const Time spacing = adversary.step_spacing(p, now);
      if (spacing < config.c1 || spacing > config.c2) {
        throw std::logic_error("adversary step spacing out of range");
      }
      Event next;
      next.time = now + spacing;
      next.kind = EventKind::step;
      next.seq = ++seq;
      next.pid = p;
      queue.push(std::move(next));
    }
  }

  result.finished_at = now;
  result.all_alive_decided = all_done();
  return result;
}

}  // namespace psph::sim
