#pragma once

// Round-based asynchronous executor (Section 6's model, operationally).
//
// A fixed set of participants runs r communication rounds; in each round
// the adversary chooses, per process, which round messages arrive "in time"
// (at least num_processes - max_failures of them, always including the
// process's own). Non-participants crashed before sending anything. The
// state encoding matches core/async_complex.h exactly.

#include <functional>
#include <vector>

#include "core/view.h"
#include "sim/adversary.h"
#include "sim/trace.h"

namespace psph::sim {

struct AsyncRunConfig {
  int num_processes = 3;  // n + 1
  int max_failures = 1;   // f
  int rounds = 1;
  /// Which processes actually participate (others fail at time zero).
  /// Empty = everyone.
  std::vector<ProcessId> participants;
};

/// Runs one asynchronous execution under `adversary`.
Trace run_async(const std::vector<std::int64_t>& inputs,
                const AsyncRunConfig& config, AsyncAdversary& adversary,
                core::ViewRegistry& views);

/// Enumerates all round-based asynchronous executions (fixed participant
/// set) and calls `visit` per trace. Exponential; for bridge tests.
void enumerate_async_executions(
    const std::vector<std::int64_t>& inputs, const AsyncRunConfig& config,
    core::ViewRegistry& views, const std::function<void(const Trace&)>& visit);

}  // namespace psph::sim
