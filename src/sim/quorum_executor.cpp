#include "sim/quorum_executor.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace psph::sim {

namespace {

void validate_corrupt(const std::vector<ProcessId>& corrupt, int n,
                      int max_byzantine) {
  if (static_cast<int>(corrupt.size()) > std::min(max_byzantine, n)) {
    throw std::logic_error("quorum: corrupt set exceeds max_byzantine");
  }
  for (std::size_t i = 0; i < corrupt.size(); ++i) {
    if (corrupt[i] < 0 || corrupt[i] >= n) {
      throw std::logic_error("quorum: corrupt pid out of range");
    }
    if (i > 0 && corrupt[i] <= corrupt[i - 1]) {
      throw std::logic_error("quorum: corrupt set not strictly increasing");
    }
  }
}

}  // namespace

QuorumTrace run_quorum(const QuorumConfig& config,
                       std::vector<std::unique_ptr<QuorumProcess>>& processes,
                       ByzantineAdversary& adversary,
                       FailureDetector* detector) {
  const int n = config.num_processes;
  if (n <= 0 || static_cast<int>(processes.size()) != n) {
    throw std::invalid_argument("run_quorum: processes.size() != n");
  }

  QuorumTrace trace;
  trace.delivered.resize(static_cast<std::size_t>(n));

  trace.corrupt = adversary.corrupt(n, config.max_byzantine);
  validate_corrupt(trace.corrupt, n, config.max_byzantine);
  const auto is_corrupt = [&](ProcessId pid) {
    return std::binary_search(trace.corrupt.begin(), trace.corrupt.end(), pid);
  };

  std::vector<bool> crashed(static_cast<std::size_t>(n), false);
  std::vector<ProcessId> crashed_sorted;
  int last_crash_round = 0;

  std::vector<PendingMessage> in_flight;
  std::uint32_t next_id = 0;
  const auto enqueue_broadcast = [&](ProcessId from,
                                     const QuorumBroadcast& b) {
    for (ProcessId to = 0; to < n; ++to) {
      in_flight.push_back({next_id++, {from, to, b.type, b.value}});
    }
  };

  std::vector<bool> decided(static_cast<std::size_t>(n), false);
  const auto poll_decision = [&](ProcessId pid, int round) {
    if (decided[static_cast<std::size_t>(pid)]) return;
    const auto value = processes[static_cast<std::size_t>(pid)]->decision();
    if (value.has_value()) {
      decided[static_cast<std::size_t>(pid)] = true;
      DecisionEvent event;
      event.pid = pid;
      event.value = *value;
      event.round = round;
      trace.decisions.push_back(event);
    }
  };
  const auto deliver_to = [&](ProcessId to, ProcessId from, std::uint8_t type,
                              std::int64_t value) {
    trace.delivered[static_cast<std::size_t>(to)].emplace(from, type, value);
    processes[static_cast<std::size_t>(to)]->deliver(from, type, value);
    ++trace.messages_delivered;
  };

  // Start phase.
  for (ProcessId pid = 0; pid < n; ++pid) {
    if (is_corrupt(pid)) continue;
    std::vector<QuorumBroadcast> out;
    processes[static_cast<std::size_t>(pid)]->start(out);
    for (const QuorumBroadcast& b : out) enqueue_broadcast(pid, b);
    poll_decision(pid, 0);
  }

  const int settle = detector != nullptr ? detector->settle_rounds() : 1;
  const int hard_cap = config.max_rounds + settle + 16;
  for (int round = 1; round <= hard_cap; ++round) {
    std::vector<ProcessId> alive;
    for (ProcessId pid = 0; pid < n; ++pid) {
      if (!is_corrupt(pid) && !crashed[static_cast<std::size_t>(pid)]) {
        alive.push_back(pid);
      }
    }

    ByzRoundPlan plan;
    const int crash_budget =
        config.max_crashes - static_cast<int>(trace.crashes.size());
    if (round <= config.max_rounds) {
      plan = adversary.plan_round(round, in_flight, alive, crash_budget);
    }

    // Crashes first, so a just-crashed sender's messages are droppable in
    // the same round and a just-crashed receiver gets nothing.
    if (static_cast<int>(plan.crash.size()) > crash_budget) {
      throw std::logic_error("quorum: crash plan exceeds budget");
    }
    for (const ProcessId pid : plan.crash) {
      if (pid < 0 || pid >= n || is_corrupt(pid) ||
          crashed[static_cast<std::size_t>(pid)]) {
        throw std::logic_error("quorum: invalid crash target");
      }
      crashed[static_cast<std::size_t>(pid)] = true;
      crashed_sorted.insert(
          std::lower_bound(crashed_sorted.begin(), crashed_sorted.end(), pid),
          pid);
      trace.crashes.emplace_back(pid, round);
      last_crash_round = round;
    }

    std::unordered_map<std::uint32_t, const PendingMessage*> by_id;
    for (const PendingMessage& pm : in_flight) by_id.emplace(pm.id, &pm);
    std::unordered_set<std::uint32_t> dropped;
    for (const std::uint32_t id : plan.drop) {
      const auto it = by_id.find(id);
      if (it == by_id.end()) {
        throw std::logic_error("quorum: drop of unknown message id");
      }
      const ProcessId from = it->second->msg.from;
      if (is_corrupt(from) || !crashed[static_cast<std::size_t>(from)]) {
        throw std::logic_error("quorum: drop of a live sender's message");
      }
      dropped.insert(id);
    }
    std::unordered_set<std::uint32_t> deferred;
    for (const std::uint32_t id : plan.defer) {
      if (by_id.find(id) == by_id.end()) {
        throw std::logic_error("quorum: defer of unknown message id");
      }
      deferred.insert(id);
    }

    // Injections: authenticated channels reject forged senders.
    for (const ByzInject& inject : plan.inject) {
      if (!is_corrupt(inject.byz)) {
        throw std::logic_error("quorum: injection for non-corrupt process");
      }
      if (inject.to < 0 || inject.to >= n) {
        throw std::logic_error("quorum: injection target out of range");
      }
      if (inject.claimed_from != inject.byz) {
        ++trace.forged_dropped;
        continue;
      }
      if (is_corrupt(inject.to) || crashed[static_cast<std::size_t>(inject.to)]) {
        continue;
      }
      deliver_to(inject.to, inject.byz, inject.type, inject.value);
    }

    // Deliveries. Messages to corrupt or crashed receivers are consumed
    // silently; deferred ones stay in flight.
    std::vector<PendingMessage> rest;
    for (const PendingMessage& pm : in_flight) {
      if (dropped.count(pm.id) != 0) continue;
      if (deferred.count(pm.id) != 0) {
        rest.push_back(pm);
        continue;
      }
      const ProcessId to = pm.msg.to;
      if (is_corrupt(to) || crashed[static_cast<std::size_t>(to)]) continue;
      deliver_to(to, pm.msg.from, pm.msg.type, pm.msg.value);
    }
    in_flight = std::move(rest);

    if (detector != nullptr) {
      for (ProcessId pid = 0; pid < n; ++pid) {
        if (is_corrupt(pid) || crashed[static_cast<std::size_t>(pid)]) continue;
        processes[static_cast<std::size_t>(pid)]->suspect(
            detector->suspects(pid, round, crashed_sorted));
      }
    }

    bool sent = false;
    for (ProcessId pid = 0; pid < n; ++pid) {
      if (is_corrupt(pid) || crashed[static_cast<std::size_t>(pid)]) continue;
      std::vector<QuorumBroadcast> out;
      processes[static_cast<std::size_t>(pid)]->step(round, out);
      for (const QuorumBroadcast& b : out) {
        enqueue_broadcast(pid, b);
        sent = true;
      }
      poll_decision(pid, round);
    }

    trace.rounds = round;
    if (round > config.max_rounds && in_flight.empty() && !sent &&
        round >= last_crash_round + settle) {
      trace.quiescent = true;
      break;
    }
  }
  return trace;
}

}  // namespace psph::sim
