#include "sim/bridge.h"

#include "topology/simplex.h"

namespace psph::sim {

void TraceComplexBuilder::add(const Trace& trace) {
  ++traces_;
  if (trace.states.empty()) return;
  std::vector<topology::VertexId> vertices;
  for (const auto& [pid, state] : trace.states.back()) {
    vertices.push_back(arena_->intern(pid, state));
  }
  if (vertices.empty()) return;
  complex_.add_facet(topology::Simplex(std::move(vertices)));
}

}  // namespace psph::sim
