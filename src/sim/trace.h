#pragma once

// Execution traces shared by the three executors.
//
// A trace records, per round, the surviving processes' full-information
// states (interned in a core::ViewRegistry, so trace states are directly
// comparable with the theoretical protocol complexes), plus crash and
// decision events. The bridge (bridge.h) turns sets of traces into
// simplicial complexes.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/view.h"

namespace psph::sim {

using core::ProcessId;
using core::StateId;

/// Simulated time in integer microticks (semi-synchronous executor); the
/// round-based executors use round numbers instead.
using Time = std::int64_t;

struct DecisionEvent {
  ProcessId pid = -1;
  std::int64_t value = 0;
  int round = 0;       // round-based executors
  Time time = 0;       // semi-synchronous executor

  bool operator==(const DecisionEvent&) const = default;
};

struct Trace {
  /// states[r] maps each process alive at the *end* of round r to its state
  /// (r = 0 is the initial configuration).
  std::vector<std::map<ProcessId, StateId>> states;
  /// Processes that crashed during each round (1-indexed by convention:
  /// crashed_in[r] crashed during round r; crashed_in[0] is empty).
  std::vector<std::vector<ProcessId>> crashed_in;
  std::vector<DecisionEvent> decisions;

  int rounds() const { return static_cast<int>(states.size()) - 1; }

  /// Final state of a process, if it survived to the end.
  std::optional<StateId> final_state(ProcessId pid) const;

  std::string to_string(const core::ViewRegistry& views) const;
};

}  // namespace psph::sim
