#pragma once

// Declarative, resumable parameter sweeps over the result store.
//
// A sweep is a list of JobSpecs (query kind + integer parameters + an
// optional extra key blob, e.g. a canonical facet encoding) plus a compute
// functor producing sealed result bytes. For each job the engine:
//
//   1. consults the ResultStore (cache hit → no computation),
//   2. fans the uncached jobs out on the shared util::parallel pool,
//   3. persists each freshly computed result with an atomic save, and
//   4. appends one JSONL line per completed job to a manifest file,
//      flushed immediately, so a killed sweep loses at most the jobs that
//      were in flight at the kill.
//
// On restart the engine reloads the manifest and finds completed jobs in
// the store, so `resume = rerun the same command`. Results come back in job
// order regardless of completion order (bit-identical output at any thread
// count, same discipline as util::parallel_for).
//
// The engine is byte-level; run_sweep<Result> adds typed encode/decode glue
// so callers never touch buffers:
//
//   sweep::SweepEngine engine({.cache_dir = dir});
//   std::vector<core::ConnectivityCheck> rows = sweep::run_sweep<
//       core::ConnectivityCheck>(
//       engine, jobs,
//       [](const sweep::JobSpec& spec, std::size_t) { return compute(spec); },
//       store::serialize_connectivity_check,
//       store::deserialize_connectivity_check);

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "store/store.h"

namespace psph::sweep {

/// One point of a parameter grid.
struct JobSpec {
  /// Query kind, e.g. "lemma12/connectivity". Distinct kinds never share
  /// cache entries even with identical parameters.
  std::string kind;
  std::vector<std::int64_t> params;
  /// Optional extra key material (canonical facet encoding of an input
  /// complex, serialized options, ...). Part of the cache key.
  std::vector<std::uint8_t> key_extra;

  /// The cache key for this job: hash of (format version, kind, params,
  /// key_extra) via CacheKeyBuilder.
  store::CacheKeyBuilder key_builder() const;

  /// Params as a JSON array, e.g. "[3,3,1,2]" (manifest rendering).
  std::string params_json() const;
};

struct SweepStats {
  std::size_t jobs = 0;
  std::size_t cache_hits = 0;
  std::size_t computed = 0;
  /// Hits whose manifest line predates this run — completed by an earlier
  /// (possibly killed) invocation sharing the manifest.
  std::size_t resumed = 0;
  /// Computed results the store failed to persist (full disk, failed
  /// rename, ...). The results are still returned and the sweep continues;
  /// the affected jobs simply recompute on the next run.
  std::size_t save_failures = 0;
  /// Manifest lines that failed the shape test on load (torn final line
  /// from a killed run, editor damage, foreign garbage). Each is skipped —
  /// the job it described simply recomputes — never fatal.
  std::size_t manifest_rejected = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  /// Summed compute time of the jobs this run actually executed.
  double compute_millis = 0.0;
  /// End-to-end time of run() calls.
  double wall_millis = 0.0;

  std::string to_string() const;
};

struct SweepOptions {
  /// Root of the ResultStore. Empty = no store and no manifest: every job
  /// recomputes (the engine still parallelizes and orders results).
  std::string cache_dir = "";
  /// JSONL completion log; defaults to <cache_dir>/manifest.jsonl.
  std::string manifest_path = "";
  /// Filesystem ops for the store; null = real filesystem. The
  /// fault-injection tests substitute a faulty implementation here.
  std::shared_ptr<store::FsOps> fs = nullptr;
};

class SweepEngine {
 public:
  /// Computes sealed result bytes for one job. Called off-thread for
  /// uncached jobs; must not touch shared mutable state.
  using Compute =
      std::function<std::vector<std::uint8_t>(const JobSpec&, std::size_t)>;

  explicit SweepEngine(const SweepOptions& options);

  /// Runs the sweep; element i of the result is the sealed bytes for
  /// jobs[i]. An exception from `compute` aborts the run (first error is
  /// rethrown), but every job that completed before the abort is already
  /// persisted — rerunning resumes past them.
  std::vector<std::vector<std::uint8_t>> run(const std::vector<JobSpec>& jobs,
                                             const Compute& compute);

  const SweepStats& stats() const { return stats_; }
  const std::string& manifest_path() const { return manifest_path_; }
  bool caching() const { return store_ != nullptr; }
  /// The underlying store (null when storeless). Compute callbacks that
  /// have their own memo layer — solve::decide's kDecision records, say —
  /// pass this through so sweep jobs and daemon queries share one cache.
  store::ResultStore* store() { return store_.get(); }

 private:
  void load_manifest();
  void append_manifest(const JobSpec& spec, const std::string& key_hex,
                       std::size_t bytes, double millis, bool cached);

  std::unique_ptr<store::ResultStore> store_;
  std::string manifest_path_;
  std::ofstream manifest_;
  std::mutex manifest_mutex_;
  /// Key hexes with a manifest line, loaded at construction + grown as
  /// lines are appended (dedups re-logging of resumed jobs).
  std::unordered_set<std::string> logged_;
  std::unordered_set<std::string> logged_before_run_;
  SweepStats stats_;
};

/// Typed sweep: compute returns Result, serialize/deserialize map it to the
/// sealed byte representation stored on disk.
template <typename Result, typename ComputeFn, typename SerializeFn,
          typename DeserializeFn>
std::vector<Result> run_sweep(SweepEngine& engine,
                              const std::vector<JobSpec>& jobs,
                              ComputeFn compute, SerializeFn serialize,
                              DeserializeFn deserialize) {
  const std::vector<std::vector<std::uint8_t>> raw = engine.run(
      jobs, [&](const JobSpec& spec, std::size_t index) {
        return serialize(compute(spec, index));
      });
  std::vector<Result> results;
  results.reserve(raw.size());
  for (const std::vector<std::uint8_t>& bytes : raw) {
    results.push_back(deserialize(bytes));
  }
  return results;
}

}  // namespace psph::sweep
