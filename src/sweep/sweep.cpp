#include "sweep/sweep.h"

#include <atomic>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "obs/obs.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace psph::sweep {

namespace {

// Sweep observability: phase spans (lookup sweep-side, compute fan-out) and
// a cumulative hit-rate gauge across every run() on this engine's process.
obs::Counter g_obs_jobs("sweep.jobs");
obs::Counter g_obs_manifest_rejected("sweep.manifest_rejected");
obs::Gauge g_obs_hit_rate("sweep.hit_rate");

/// Minimal JSON string escaping (kinds are identifiers, but stay correct).
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string pretty_bytes(std::uint64_t bytes) {
  char buffer[32];
  if (bytes < 1024) {
    std::snprintf(buffer, sizeof(buffer), "%lluB",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.1fKiB",
                  static_cast<double>(bytes) / 1024.0);
  }
  return buffer;
}

}  // namespace

store::CacheKeyBuilder JobSpec::key_builder() const {
  store::CacheKeyBuilder builder(kind);
  for (std::int64_t p : params) builder.param(p);
  if (!key_extra.empty()) builder.raw(key_extra);
  return builder;
}

std::string JobSpec::params_json() const {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i) out << ",";
    out << params[i];
  }
  out << "]";
  return out.str();
}

std::string SweepStats::to_string() const {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "%zu jobs: %zu cache hits (%zu resumed), %zu computed; "
                "%s read, %s written; compute %.1fms, wall %.1fms",
                jobs, cache_hits, resumed, computed,
                pretty_bytes(bytes_read).c_str(),
                pretty_bytes(bytes_written).c_str(), compute_millis,
                wall_millis);
  std::string out = buffer;
  if (save_failures != 0) {
    out += "; " + std::to_string(save_failures) + " save failures";
  }
  if (manifest_rejected != 0) {
    out += "; " + std::to_string(manifest_rejected) +
           " manifest lines rejected";
  }
  return out;
}

SweepEngine::SweepEngine(const SweepOptions& options) {
  if (!options.cache_dir.empty()) {
    store_ = std::make_unique<store::ResultStore>(options.cache_dir,
                                                  options.fs);
    manifest_path_ = options.manifest_path.empty()
                         ? (store_->root() / "manifest.jsonl").string()
                         : options.manifest_path;
    load_manifest();
    manifest_.open(manifest_path_, std::ios::app);
    if (!manifest_) {
      throw std::runtime_error("sweep: cannot open manifest " +
                               manifest_path_);
    }
  }
}

void SweepEngine::load_manifest() {
  std::ifstream in(manifest_path_);
  if (!in) return;  // first run: no manifest yet
  std::string line;
  while (std::getline(in, line)) {
    // Each well-formed line starts {"v":1,"key":"<32 hex>",...} (schema
    // version 1) or the pre-versioning {"key":"<32 hex>",...}. A torn
    // final line (crash mid-append) or foreign garbage fails the shape
    // test and is skipped but counted; the job it described re-runs,
    // which is the safe direction.
    if (line.empty()) continue;
    const std::string v1_prefix = "{\"v\":1,\"key\":\"";
    const std::string legacy_prefix = "{\"key\":\"";
    std::size_t hex_at = std::string::npos;
    if (line.rfind(v1_prefix, 0) == 0) {
      hex_at = v1_prefix.size();
    } else if (line.rfind(legacy_prefix, 0) == 0) {
      hex_at = legacy_prefix.size();
    }
    if (hex_at == std::string::npos || line.size() < hex_at + 32) {
      ++stats_.manifest_rejected;
      if (obs::enabled()) g_obs_manifest_rejected.add(1);
      continue;
    }
    const std::string hex = line.substr(hex_at, 32);
    if (hex.find_first_not_of("0123456789abcdef") != std::string::npos) {
      ++stats_.manifest_rejected;
      if (obs::enabled()) g_obs_manifest_rejected.add(1);
      continue;
    }
    logged_.insert(hex);
  }
  logged_before_run_ = logged_;
}

void SweepEngine::append_manifest(const JobSpec& spec,
                                  const std::string& key_hex,
                                  std::size_t bytes, double millis,
                                  bool cached) {
  if (store_ == nullptr) return;
  std::lock_guard<std::mutex> lock(manifest_mutex_);
  if (!logged_.insert(key_hex).second) return;  // already logged
  char line[512];
  std::snprintf(line, sizeof(line),
                "{\"v\":1,\"key\":\"%s\",\"kind\":\"%s\",\"params\":%s,"
                "\"bytes\":%zu,\"millis\":%.3f,\"cached\":%s}\n",
                key_hex.c_str(), json_escape(spec.kind).c_str(),
                spec.params_json().c_str(), bytes, millis,
                cached ? "true" : "false");
  manifest_ << line;
  manifest_.flush();  // a killed sweep keeps every completed line
}

std::vector<std::vector<std::uint8_t>> SweepEngine::run(
    const std::vector<JobSpec>& jobs, const Compute& compute) {
  obs::SpanTimer run_span("sweep.run",
                          static_cast<std::int64_t>(jobs.size()));
  if (obs::enabled()) g_obs_jobs.add(jobs.size());
  util::Timer wall;
  const store::StoreStats before =
      store_ ? store_->stats() : store::StoreStats{};

  std::vector<std::vector<std::uint8_t>> results(jobs.size());
  std::vector<std::size_t> uncached;
  stats_.jobs += jobs.size();

  {
    obs::SpanTimer lookup_span("sweep.lookup",
                               static_cast<std::int64_t>(jobs.size()));
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (store_ == nullptr) {
        uncached.push_back(i);
        continue;
      }
      const store::CacheKeyBuilder builder = jobs[i].key_builder();
      std::optional<std::vector<std::uint8_t>> hit = store_->load(builder);
      if (!hit.has_value()) {
        uncached.push_back(i);
        continue;
      }
      const std::string hex = builder.key().hex();
      ++stats_.cache_hits;
      if (logged_before_run_.count(hex) != 0) ++stats_.resumed;
      append_manifest(jobs[i], hex, hit->size(), 0.0, true);
      results[i] = std::move(*hit);
    }
  }
  if (obs::enabled() && stats_.jobs != 0) {
    g_obs_hit_rate.set(static_cast<double>(stats_.cache_hits) /
                       static_cast<double>(stats_.jobs));
  }

  // Per-slot outputs keep the fan-out deterministic; the counters below
  // survive a compute exception so stats stay truthful for aborted runs.
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> save_failures{0};
  std::atomic<std::uint64_t> compute_micros{0};
  try {
    util::parallel_for(uncached.size(), [&](std::size_t u) {
      const std::size_t i = uncached[u];
      obs::SpanTimer span("sweep.compute", static_cast<std::int64_t>(i));
      util::Timer timer;
      std::vector<std::uint8_t> bytes = compute(jobs[i], i);
      const double millis = timer.millis();
      if (store_ != nullptr) {
        const store::CacheKeyBuilder builder = jobs[i].key_builder();
        // A cache that cannot persist must not kill the computation: the
        // result is still returned, the manifest line is withheld (the
        // entry is not on disk), and the job recomputes next run.
        try {
          store_->save(builder, bytes);
          append_manifest(jobs[i], builder.key().hex(), bytes.size(), millis,
                          false);
        } catch (const std::exception&) {
          save_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
      results[i] = std::move(bytes);
      compute_micros.fetch_add(static_cast<std::uint64_t>(millis * 1000.0),
                               std::memory_order_relaxed);
      completed.fetch_add(1, std::memory_order_relaxed);
    });
  } catch (...) {
    stats_.save_failures += save_failures.load();
    stats_.computed += completed.load();
    stats_.compute_millis += static_cast<double>(compute_micros.load()) / 1000.0;
    stats_.wall_millis += wall.millis();
    if (store_) {
      const store::StoreStats after = store_->stats();
      stats_.bytes_read += after.bytes_read - before.bytes_read;
      stats_.bytes_written += after.bytes_written - before.bytes_written;
    }
    throw;
  }

  stats_.save_failures += save_failures.load();
  stats_.computed += completed.load();
  stats_.compute_millis += static_cast<double>(compute_micros.load()) / 1000.0;
  stats_.wall_millis += wall.millis();
  if (store_) {
    const store::StoreStats after = store_->stats();
    stats_.bytes_read += after.bytes_read - before.bytes_read;
    stats_.bytes_written += after.bytes_written - before.bytes_written;
  }
  return results;
}

}  // namespace psph::sweep
