#pragma once

// Counterexample shrinking (delta debugging over adversary schedules).
//
// Given a schedule whose replay trips an invariant monitor, the shrinker
// searches for a *smaller* schedule that still trips one. Candidate edits
// always move toward the failure-free run:
//
//   sync      — un-crash a process (dropping its delivery plan), or deliver
//               a withheld crasher message to one more survivor;
//   async     — grow one process's heard-set by one sender;
//   semi-sync — clear one crash, snap one step spacing down to c1, or snap
//               one delivery delay down to 1.
//
// A candidate is accepted only if (a) the oracle says it still fails and
// (b) its choice_count() is *strictly* below the current schedule's. (b) is
// not redundant: un-crashing a process enlarges later rounds' survivor
// sets, which can raise the withheld-message count of later crashers, so
// not every edit shrinks the metric. Filtering on the metric makes the
// greedy loop terminate and yields the guarantee tests assert: a shrunk
// schedule contains strictly fewer adversary choices than the original
// (unless the original was already minimal).
//
// Shrunk semi-sync schedules can perturb the event interleaving, so their
// replay may consume the recorded decision streams out of step; replay
// adversaries pad with least-adversarial defaults (schedule.h), keeping the
// oracle total.

#include <cstddef>
#include <functional>
#include <vector>

#include "check/schedule.h"

namespace psph::check {

/// Returns true when the candidate schedule still reproduces the failure
/// (typically: !replay_schedule(candidate).ok()).
using ShrinkOracle = std::function<bool(const Schedule&)>;

/// All single-edit reductions of `schedule` (not yet filtered by the
/// oracle or the choice-count metric). Exposed for tests.
std::vector<Schedule> shrink_candidates(const Schedule& schedule);

struct ShrinkResult {
  Schedule schedule;        // the minimized counterexample
  std::size_t oracle_calls = 0;
  std::size_t accepted = 0;  // edits that survived the oracle
};

/// Greedy delta debugging: repeatedly applies the first acceptable
/// candidate until none remains. The result replays to a failure whenever
/// the input does (the input itself is returned if already minimal).
ShrinkResult shrink(const Schedule& schedule, const ShrinkOracle& still_fails);

}  // namespace psph::check
