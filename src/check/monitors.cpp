#include "check/monitors.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace psph::check {

InvariantViolation::InvariantViolation(Violation violation, Schedule schedule)
    : std::runtime_error(violation.monitor + ": " + violation.detail +
                         " [" + schedule.summary() + "]"),
      violation_(std::move(violation)),
      schedule_(std::move(schedule)) {}

std::optional<std::string> AgreementMonitor::check(
    const RunRecord& run) const {
  std::set<std::int64_t> values;
  for (const sim::DecisionEvent& d : run.decisions) values.insert(d.value);
  if (static_cast<int>(values.size()) <= run.k) return std::nullopt;
  std::ostringstream out;
  out << values.size() << " distinct decisions > k=" << run.k << " {";
  bool first = true;
  for (const std::int64_t v : values) {
    if (!first) out << ",";
    first = false;
    out << v;
  }
  out << "}";
  return out.str();
}

std::optional<std::string> ValidityMonitor::check(const RunRecord& run) const {
  for (const sim::DecisionEvent& d : run.decisions) {
    if (std::find(run.inputs.begin(), run.inputs.end(), d.value) ==
        run.inputs.end()) {
      std::ostringstream out;
      out << "P" << d.pid << " decided " << d.value
          << ", which is no process's input";
      return out.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> DecisionBoundMonitor::check(
    const RunRecord& run) const {
  for (const sim::DecisionEvent& d : run.decisions) {
    if (run.round_bound > 0 && d.round > run.round_bound) {
      std::ostringstream out;
      out << "P" << d.pid << " decided in round " << d.round << " > bound "
          << run.round_bound;
      return out.str();
    }
    if (run.time_bound > 0 && d.time > run.time_bound) {
      std::ostringstream out;
      out << "P" << d.pid << " decided at time " << d.time << " > bound "
          << run.time_bound;
      return out.str();
    }
  }
  if (run.require_all_alive_decided && !run.all_alive_decided) {
    return std::string("a process alive at the end never decided");
  }
  return std::nullopt;
}

std::optional<std::string> NoZombieSendMonitor::check(
    const RunRecord& run) const {
  if (run.trace == nullptr || run.views == nullptr) return std::nullopt;
  const sim::Trace& trace = *run.trace;
  for (std::size_t r = 1; r < trace.states.size(); ++r) {
    const auto& previous = trace.states[r - 1];
    for (const auto& [pid, state] : trace.states[r]) {
      for (const sim::ProcessId sender : run.views->direct_senders(state)) {
        if (previous.find(sender) == previous.end()) {
          std::ostringstream out;
          out << "P" << pid << "'s round-" << r << " view heard from P"
              << sender << ", dead at the end of round " << (r - 1);
          return out.str();
        }
      }
    }
  }
  return std::nullopt;
}

std::vector<std::shared_ptr<InvariantMonitor>> standard_monitors(Model model) {
  std::vector<std::shared_ptr<InvariantMonitor>> monitors;
  monitors.push_back(std::make_shared<AgreementMonitor>());
  monitors.push_back(std::make_shared<ValidityMonitor>());
  monitors.push_back(std::make_shared<DecisionBoundMonitor>());
  if (model != Model::kSemiSync) {
    monitors.push_back(std::make_shared<NoZombieSendMonitor>());
  }
  return monitors;
}

std::vector<Violation> check_all(
    const std::vector<std::shared_ptr<InvariantMonitor>>& monitors,
    const RunRecord& run) {
  std::vector<Violation> violations;
  for (const auto& monitor : monitors) {
    if (std::optional<std::string> detail = monitor->check(run)) {
      violations.push_back({monitor->name(), std::move(*detail)});
    }
  }
  return violations;
}

}  // namespace psph::check
