#include "check/monitors.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace psph::check {

InvariantViolation::InvariantViolation(Violation violation, Schedule schedule)
    : std::runtime_error(violation.monitor + ": " + violation.detail +
                         " [" + schedule.summary() + "]"),
      violation_(std::move(violation)),
      schedule_(std::move(schedule)) {}

bool RunRecord::is_correct(sim::ProcessId pid) const {
  if (correct.empty()) return true;
  return std::binary_search(correct.begin(), correct.end(), pid);
}

std::optional<std::string> AgreementMonitor::check(
    const RunRecord& run) const {
  std::set<std::int64_t> values;
  for (const sim::DecisionEvent& d : run.decisions) {
    if (run.is_correct(d.pid)) values.insert(d.value);
  }
  if (static_cast<int>(values.size()) <= run.k) return std::nullopt;
  std::ostringstream out;
  out << values.size() << " distinct decisions > k=" << run.k << " {";
  bool first = true;
  for (const std::int64_t v : values) {
    if (!first) out << ",";
    first = false;
    out << v;
  }
  out << "}";
  return out.str();
}

std::optional<std::string> ValidityMonitor::check(const RunRecord& run) const {
  if (!run.validity_applies) return std::nullopt;
  const auto is_correct_input = [&](std::int64_t value) {
    for (std::size_t pid = 0; pid < run.inputs.size(); ++pid) {
      if (run.inputs[pid] == value &&
          run.is_correct(static_cast<sim::ProcessId>(pid))) {
        return true;
      }
    }
    return false;
  };
  for (const sim::DecisionEvent& d : run.decisions) {
    if (!run.is_correct(d.pid)) continue;
    if (!is_correct_input(d.value)) {
      std::ostringstream out;
      out << "P" << d.pid << " decided " << d.value
          << ", which is no correct process's input";
      return out.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> DecisionBoundMonitor::check(
    const RunRecord& run) const {
  for (const sim::DecisionEvent& d : run.decisions) {
    if (run.round_bound > 0 && d.round > run.round_bound) {
      std::ostringstream out;
      out << "P" << d.pid << " decided in round " << d.round << " > bound "
          << run.round_bound;
      return out.str();
    }
    if (run.time_bound > 0 && d.time > run.time_bound) {
      std::ostringstream out;
      out << "P" << d.pid << " decided at time " << d.time << " > bound "
          << run.time_bound;
      return out.str();
    }
  }
  if (run.require_all_alive_decided && !run.all_alive_decided) {
    return std::string("a process alive at the end never decided");
  }
  return std::nullopt;
}

std::optional<std::string> NoZombieSendMonitor::check(
    const RunRecord& run) const {
  if (run.trace == nullptr || run.views == nullptr) return std::nullopt;
  const sim::Trace& trace = *run.trace;
  for (std::size_t r = 1; r < trace.states.size(); ++r) {
    const auto& previous = trace.states[r - 1];
    for (const auto& [pid, state] : trace.states[r]) {
      for (const sim::ProcessId sender : run.views->direct_senders(state)) {
        if (previous.find(sender) == previous.end()) {
          std::ostringstream out;
          out << "P" << pid << "'s round-" << r << " view heard from P"
              << sender << ", dead at the end of round " << (r - 1);
          return out.str();
        }
      }
    }
  }
  return std::nullopt;
}

namespace {

/// The distinct authenticated senders of (type, 1) messages any receiver
/// ever saw — the global evidence pool certificates draw from.
std::set<sim::ProcessId> global_senders(const sim::QuorumTrace& trace,
                                        std::uint8_t type) {
  std::set<sim::ProcessId> senders;
  for (const auto& received : trace.delivered) {
    for (const auto& [from, msg_type, value] : received) {
      if (msg_type == type && value == 1) senders.insert(from);
    }
  }
  return senders;
}

}  // namespace

std::optional<std::string> QuorumCertificateMonitor::check(
    const RunRecord& run) const {
  if (run.quorum == nullptr || run.aba_certificates == nullptr) {
    return std::nullopt;
  }
  const int guard_ready = protocols::aba_guard_ready2(run.n, run.byz_t);
  for (const protocols::AbaCertificate& cert : *run.aba_certificates) {
    if (static_cast<int>(cert.ready_senders.size()) < guard_ready) {
      std::ostringstream out;
      out << "P" << cert.pid << " decided on a ready certificate of "
          << cert.ready_senders.size() << " senders < 2T+1=" << guard_ready;
      return out.str();
    }
    const auto& received =
        run.quorum->delivered[static_cast<std::size_t>(cert.pid)];
    for (const sim::ProcessId sender : cert.echo_senders) {
      if (received.count({sender, protocols::kAbaEcho, 1}) == 0) {
        std::ostringstream out;
        out << "P" << cert.pid << " counted a phantom ECHO sender P"
            << sender << " never delivered on an authenticated channel";
        return out.str();
      }
    }
    for (const sim::ProcessId sender : cert.ready_senders) {
      if (received.count({sender, protocols::kAbaReady, 1}) == 0) {
        std::ostringstream out;
        out << "P" << cert.pid << " counted a phantom READY sender P"
            << sender << " never delivered on an authenticated channel";
        return out.str();
      }
    }
  }
  bool correct_decided = false;
  for (const sim::DecisionEvent& d : run.decisions) {
    if (run.is_correct(d.pid)) correct_decided = true;
  }
  if (correct_decided) {
    const int guard_echo = protocols::aba_guard_echo(run.n, run.byz_t);
    const std::set<sim::ProcessId> echoers =
        global_senders(*run.quorum, protocols::kAbaEcho);
    if (static_cast<int>(echoers.size()) < guard_echo) {
      std::ostringstream out;
      out << "a decision exists on only " << echoers.size()
          << " distinct ECHO senders globally < " << guard_echo;
      return out.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> QuorumLivenessMonitor::check(
    const RunRecord& run) const {
  if (run.quorum == nullptr || run.aba_final_counts == nullptr) {
    return std::nullopt;
  }
  if (!run.quorum->quiescent) {
    return std::string("run did not quiesce within the round cap");
  }
  std::set<sim::ProcessId> deciders;
  for (const sim::DecisionEvent& d : run.decisions) {
    if (run.is_correct(d.pid)) deciders.insert(d.pid);
  }
  std::size_t num_correct = 0;
  bool any_one = false;
  bool all_one = true;
  for (std::size_t pid = 0; pid < run.inputs.size(); ++pid) {
    if (!run.is_correct(static_cast<sim::ProcessId>(pid))) continue;
    ++num_correct;
    if (run.inputs[pid] == 1) {
      any_one = true;
    } else {
      all_one = false;
    }
  }
  if (!any_one && !deciders.empty()) {
    std::ostringstream out;
    out << "unforgeability: P" << *deciders.begin()
        << " decided with no correct input 1";
    return out.str();
  }
  if (all_one && num_correct > 0 && deciders.size() < num_correct) {
    std::ostringstream out;
    out << "correctness: all correct inputs are 1 but only "
        << deciders.size() << "/" << num_correct
        << " correct processes decided at quiescence";
    return out.str();
  }
  if (!deciders.empty() && deciders.size() < num_correct) {
    std::ostringstream out;
    out << "relay: " << deciders.size() << "/" << num_correct
        << " correct processes decided at quiescence";
    return out.str();
  }
  return std::nullopt;
}

std::optional<std::string> NbacObligationMonitor::check(
    const RunRecord& run) const {
  if (run.quorum == nullptr || run.nbac_justifications == nullptr) {
    return std::nullopt;
  }
  bool all_yes = true;
  for (const std::int64_t vote : run.inputs) {
    if (vote != 1) all_yes = false;
  }
  for (const protocols::NbacJustification& j : *run.nbac_justifications) {
    if (j.decided == protocols::kNbacCommit) {
      if (!all_yes) {
        std::ostringstream out;
        out << "P" << j.pid << " committed although some vote was NO";
        return out.str();
      }
      if (j.yes_votes != run.n) {
        std::ostringstream out;
        out << "P" << j.pid << " committed on " << j.yes_votes << "/"
            << run.n << " YES votes";
        return out.str();
      }
    }
    if (j.decided == protocols::kNbacAbort && !j.saw_no && !j.saw_suspicion) {
      std::ostringstream out;
      out << "P" << j.pid
          << " aborted with neither a NO vote nor a suspicion";
      return out.str();
    }
  }
  if (run.quorum->quiescent) {
    std::set<sim::ProcessId> crashed;
    for (const auto& [pid, round] : run.quorum->crashes) crashed.insert(pid);
    std::set<sim::ProcessId> decided;
    for (const protocols::NbacJustification& j : *run.nbac_justifications) {
      decided.insert(j.pid);
    }
    for (sim::ProcessId pid = 0; pid < run.n; ++pid) {
      if (crashed.count(pid) != 0 || !run.is_correct(pid)) continue;
      if (decided.count(pid) == 0) {
        std::ostringstream out;
        out << "termination: P" << pid
            << " never decided although the run quiesced";
        return out.str();
      }
    }
  }
  return std::nullopt;
}

std::vector<std::shared_ptr<InvariantMonitor>> standard_monitors(Model model) {
  std::vector<std::shared_ptr<InvariantMonitor>> monitors;
  monitors.push_back(std::make_shared<AgreementMonitor>());
  monitors.push_back(std::make_shared<ValidityMonitor>());
  monitors.push_back(std::make_shared<DecisionBoundMonitor>());
  if (model == Model::kSync || model == Model::kAsync) {
    monitors.push_back(std::make_shared<NoZombieSendMonitor>());
  }
  if (model == Model::kQuorum) {
    monitors.push_back(std::make_shared<QuorumCertificateMonitor>());
    monitors.push_back(std::make_shared<QuorumLivenessMonitor>());
    monitors.push_back(std::make_shared<NbacObligationMonitor>());
  }
  return monitors;
}

std::vector<Violation> check_all(
    const std::vector<std::shared_ptr<InvariantMonitor>>& monitors,
    const RunRecord& run) {
  std::vector<Violation> violations;
  for (const auto& monitor : monitors) {
    if (std::optional<std::string> detail = monitor->check(run)) {
      violations.push_back({monitor->name(), std::move(*detail)});
    }
  }
  return violations;
}

}  // namespace psph::check
