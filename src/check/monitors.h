#pragma once

// Invariant monitors: pluggable run-time checkers for protocol executions.
//
// Each executed run is summarized into a RunRecord (decisions, inputs, the
// agreement parameter to check against, optional bounds, and — for the
// round-based models — the full-information trace). Monitors inspect the
// record and return a failure description when an invariant is broken:
//
//   * agreement    — at most k distinct decided values (k-set agreement),
//   * validity     — every decided value is some process's input,
//   * decision bounds — decisions land within the round bound implied by
//                    Theorem 18 / the early-stopping rule, or the time
//                    bound N_R·c2 of Corollary 22,
//   * no-zombie-sends — no round-r view contains a direct sender that was
//                    not alive at the end of round r-1 (an executor-level
//                    sanity invariant: crashed processes stay silent).
//
// A violation is packaged as InvariantViolation carrying both the monitor's
// diagnosis and the complete adversary Schedule of the offending run, so
// the failure is replayable (and shrinkable) from the exception alone.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/schedule.h"
#include "core/view.h"
#include "sim/semisync_executor.h"
#include "sim/trace.h"

namespace psph::check {

/// Everything a monitor may inspect about one finished run. Pointers are
/// borrowed from the run outcome and may be null (monitors that need them
/// skip silently); `k` is the *monitored* agreement degree, which tests may
/// set tighter than the protocol's own k to plant violations.
struct RunRecord {
  Model model = Model::kSync;
  int n = 0;
  int f = 0;
  int k = 1;
  std::vector<std::int64_t> inputs;
  std::vector<sim::DecisionEvent> decisions;
  /// Crashes the adversary actually performed (f'); drives the
  /// early-stopping bound min(f'+2, f+1).
  int actual_failures = 0;
  /// Decisions must satisfy round <= round_bound (0 = not checked).
  int round_bound = 0;
  /// Semi-sync: decisions must satisfy time <= time_bound (0 = not checked).
  sim::Time time_bound = 0;
  /// Semi-sync only: every process alive at the end must have decided.
  bool require_all_alive_decided = false;
  bool all_alive_decided = true;

  const sim::Trace* trace = nullptr;
  const core::ViewRegistry* views = nullptr;
};

/// One invariant failure: which monitor fired and why.
struct Violation {
  std::string monitor;
  std::string detail;
};

/// Thrown by require_ok (soak.h) when any monitor fires; carries the full
/// schedule of the offending run so callers can save, replay, or shrink it.
class InvariantViolation : public std::runtime_error {
 public:
  InvariantViolation(Violation violation, Schedule schedule);

  const Violation& violation() const { return violation_; }
  const Schedule& schedule() const { return schedule_; }

 private:
  Violation violation_;
  Schedule schedule_;
};

class InvariantMonitor {
 public:
  virtual ~InvariantMonitor() = default;
  virtual const char* name() const = 0;
  /// Failure description, or nullopt if the invariant holds.
  virtual std::optional<std::string> check(const RunRecord& run) const = 0;
};

/// At most k distinct decided values.
class AgreementMonitor : public InvariantMonitor {
 public:
  const char* name() const override { return "agreement"; }
  std::optional<std::string> check(const RunRecord& run) const override;
};

/// Every decided value is some process's input.
class ValidityMonitor : public InvariantMonitor {
 public:
  const char* name() const override { return "validity"; }
  std::optional<std::string> check(const RunRecord& run) const override;
};

/// Decisions respect round_bound / time_bound, and (semi-sync) every alive
/// process decided when the record requires it.
class DecisionBoundMonitor : public InvariantMonitor {
 public:
  const char* name() const override { return "decision-bound"; }
  std::optional<std::string> check(const RunRecord& run) const override;
};

/// Round-r views only contain direct senders alive at the end of round r-1.
class NoZombieSendMonitor : public InvariantMonitor {
 public:
  const char* name() const override { return "no-zombie-send"; }
  std::optional<std::string> check(const RunRecord& run) const override;
};

/// The standard battery: agreement, validity, decision bounds, and (for the
/// round-based models) no-zombie-sends.
std::vector<std::shared_ptr<InvariantMonitor>> standard_monitors(Model model);

/// Runs every monitor; returns all failures (empty = run is clean).
std::vector<Violation> check_all(
    const std::vector<std::shared_ptr<InvariantMonitor>>& monitors,
    const RunRecord& run);

}  // namespace psph::check
