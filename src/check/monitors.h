#pragma once

// Invariant monitors: pluggable run-time checkers for protocol executions.
//
// Each executed run is summarized into a RunRecord (decisions, inputs, the
// agreement parameter to check against, optional bounds, and — for the
// round-based models — the full-information trace). Monitors inspect the
// record and return a failure description when an invariant is broken:
//
//   * agreement    — at most k distinct decided values (k-set agreement),
//   * validity     — every decided value is some process's input,
//   * decision bounds — decisions land within the round bound implied by
//                    Theorem 18 / the early-stopping rule, or the time
//                    bound N_R·c2 of Corollary 22,
//   * no-zombie-sends — no round-r view contains a direct sender that was
//                    not alive at the end of round r-1 (an executor-level
//                    sanity invariant: crashed processes stay silent).
//
// A violation is packaged as InvariantViolation carrying both the monitor's
// diagnosis and the complete adversary Schedule of the offending run, so
// the failure is replayable (and shrinkable) from the exception alone.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/schedule.h"
#include "core/view.h"
#include "protocols/aba_byz.h"
#include "protocols/nbac_fd.h"
#include "sim/quorum_executor.h"
#include "sim/semisync_executor.h"
#include "sim/trace.h"

namespace psph::check {

/// Everything a monitor may inspect about one finished run. Pointers are
/// borrowed from the run outcome and may be null (monitors that need them
/// skip silently); `k` is the *monitored* agreement degree, which tests may
/// set tighter than the protocol's own k to plant violations.
struct RunRecord {
  Model model = Model::kSync;
  int n = 0;
  int f = 0;
  int k = 1;
  std::vector<std::int64_t> inputs;
  std::vector<sim::DecisionEvent> decisions;
  /// Crashes the adversary actually performed (f'); drives the
  /// early-stopping bound min(f'+2, f+1).
  int actual_failures = 0;
  /// Decisions must satisfy round <= round_bound (0 = not checked).
  int round_bound = 0;
  /// Semi-sync: decisions must satisfy time <= time_bound (0 = not checked).
  sim::Time time_bound = 0;
  /// Semi-sync only: every process alive at the end must have decided.
  bool require_all_alive_decided = false;
  bool all_alive_decided = true;

  const sim::Trace* trace = nullptr;
  const core::ViewRegistry* views = nullptr;

  /// The correct (non-Byzantine) processes, sorted; empty means *all*
  /// processes are correct — the crash-only models leave it empty and are
  /// behaviorally unchanged. Agreement and validity quantify over these
  /// only: a Byzantine process "deciding" garbage is not a violation, and
  /// a corrupt process's input constrains nothing.
  std::vector<sim::ProcessId> correct;
  /// Whether the generic validity monitor applies. NBAC's ABORT (0) is a
  /// legal decision even when nobody voted 0, so its records disable the
  /// input-based check in favor of NbacObligationMonitor's obligations.
  bool validity_applies = true;
  /// Byzantine resilience parameter T of the run (quorum model).
  int byz_t = 0;

  const sim::QuorumTrace* quorum = nullptr;
  const std::vector<protocols::AbaCertificate>* aba_certificates = nullptr;
  const std::vector<protocols::AbaCertificate>* aba_final_counts = nullptr;
  const std::vector<protocols::NbacJustification>* nbac_justifications =
      nullptr;

  bool is_correct(sim::ProcessId pid) const;
};

/// One invariant failure: which monitor fired and why.
struct Violation {
  std::string monitor;
  std::string detail;
};

/// Thrown by require_ok (soak.h) when any monitor fires; carries the full
/// schedule of the offending run so callers can save, replay, or shrink it.
class InvariantViolation : public std::runtime_error {
 public:
  InvariantViolation(Violation violation, Schedule schedule);

  const Violation& violation() const { return violation_; }
  const Schedule& schedule() const { return schedule_; }

 private:
  Violation violation_;
  Schedule schedule_;
};

class InvariantMonitor {
 public:
  virtual ~InvariantMonitor() = default;
  virtual const char* name() const = 0;
  /// Failure description, or nullopt if the invariant holds.
  virtual std::optional<std::string> check(const RunRecord& run) const = 0;
};

/// At most k distinct values decided *by correct processes*.
class AgreementMonitor : public InvariantMonitor {
 public:
  const char* name() const override { return "agreement"; }
  std::optional<std::string> check(const RunRecord& run) const override;
};

/// Every value decided by a correct process is some *correct* process's
/// input. Skipped when the record clears validity_applies.
class ValidityMonitor : public InvariantMonitor {
 public:
  const char* name() const override { return "validity"; }
  std::optional<std::string> check(const RunRecord& run) const override;
};

/// Decisions respect round_bound / time_bound, and (semi-sync) every alive
/// process decided when the record requires it.
class DecisionBoundMonitor : public InvariantMonitor {
 public:
  const char* name() const override { return "decision-bound"; }
  std::optional<std::string> check(const RunRecord& run) const override;
};

/// Round-r views only contain direct senders alive at the end of round r-1.
class NoZombieSendMonitor : public InvariantMonitor {
 public:
  const char* name() const override { return "no-zombie-send"; }
  std::optional<std::string> check(const RunRecord& run) const override;
};

/// Quorum-certificate integrity (Byzantine quorum model): every decision
/// carries a ready certificate of >= 2T+1 distinct senders, every sender
/// counted in any certificate was actually delivered to that process over
/// the authenticated channels (forged senders can never be counted), and
/// any correct decision implies >= (N+T+2)/2 distinct echo senders exist
/// globally — at the N = 3T+1 resilience boundary both thresholds equal
/// N - T, the classical "no decision without N-T matching echoes" rule.
class QuorumCertificateMonitor : public InvariantMonitor {
 public:
  const char* name() const override { return "quorum-certificate"; }
  std::optional<std::string> check(const RunRecord& run) const override;
};

/// Byzantine-aware liveness/safety at quiescence: the run must be
/// quiescent; unforgeability (no correct input 1 => nobody correct
/// decides), correctness (all correct inputs 1 => every correct process
/// decides), and relay (one correct decision => all correct processes
/// decide). These are exactly the properties that break at N = 3T.
class QuorumLivenessMonitor : public InvariantMonitor {
 public:
  const char* name() const override { return "quorum-liveness"; }
  std::optional<std::string> check(const RunRecord& run) const override;
};

/// NBAC obligations: COMMIT only if every process voted YES;
/// ABORT only with a justification (a NO vote, a crash, or a recorded
/// suspicion); termination (quiescent => every non-crashed process
/// decided). Agreement is deliberately NOT among these — see nbac_fd.h.
class NbacObligationMonitor : public InvariantMonitor {
 public:
  const char* name() const override { return "nbac-obligation"; }
  std::optional<std::string> check(const RunRecord& run) const override;
};

/// The standard battery: agreement, validity, decision bounds, and (for the
/// round-based models) no-zombie-sends; the quorum model swaps
/// no-zombie-sends for the certificate, liveness, and NBAC monitors
/// (each skips silently when its outcome data is absent).
std::vector<std::shared_ptr<InvariantMonitor>> standard_monitors(Model model);

/// Runs every monitor; returns all failures (empty = run is clean).
std::vector<Violation> check_all(
    const std::vector<std::shared_ptr<InvariantMonitor>>& monitors,
    const RunRecord& run);

}  // namespace psph::check
