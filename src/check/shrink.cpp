#include "check/shrink.h"

#include <algorithm>
#include <set>

namespace psph::check {

namespace {

void sync_candidates(const Schedule& schedule,
                     std::vector<Schedule>& candidates) {
  const int n = static_cast<int>(schedule.meta_or("n", 0));
  // Alive set entering each round, for computing that round's survivors.
  std::set<sim::ProcessId> alive;
  for (int p = 0; p < n; ++p) alive.insert(p);

  for (std::size_t r = 0; r < schedule.sync_rounds.size(); ++r) {
    const sim::SyncRoundPlan& plan = schedule.sync_rounds[r];
    std::set<sim::ProcessId> survivors = alive;
    for (const sim::ProcessId crasher : plan.crash) survivors.erase(crasher);

    for (std::size_t c = 0; c < plan.crash.size(); ++c) {
      const sim::ProcessId crasher = plan.crash[c];
      // Un-crash: the process runs to completion (later plans never name
      // it, so they stay legal — old survivor sets only grow).
      {
        Schedule candidate = schedule;
        sim::SyncRoundPlan& edited = candidate.sync_rounds[r];
        edited.crash.erase(edited.crash.begin() +
                           static_cast<std::ptrdiff_t>(c));
        edited.delivered_to.erase(crasher);
        candidates.push_back(std::move(candidate));
      }
      // Deliver one more of the crasher's messages.
      const auto it = plan.delivered_to.find(crasher);
      for (const sim::ProcessId survivor : survivors) {
        if (it != plan.delivered_to.end() &&
            it->second.count(survivor) != 0) {
          continue;
        }
        Schedule candidate = schedule;
        candidate.sync_rounds[r].delivered_to[crasher].insert(survivor);
        candidates.push_back(std::move(candidate));
      }
    }
    alive = std::move(survivors);
  }
}

void async_candidates(const Schedule& schedule,
                      std::vector<Schedule>& candidates) {
  for (std::size_t r = 0; r < schedule.async_rounds.size(); ++r) {
    const sim::AsyncRoundPlan& plan = schedule.async_rounds[r];
    for (const auto& [pid, heard] : plan.heard) {
      for (const auto& [sender, sender_heard] : plan.heard) {
        (void)sender_heard;
        if (heard.count(sender) != 0) continue;
        Schedule candidate = schedule;
        candidate.async_rounds[r].heard[pid].insert(sender);
        candidates.push_back(std::move(candidate));
      }
    }
  }
}

void semisync_candidates(const Schedule& schedule,
                         std::vector<Schedule>& candidates) {
  const sim::Time c1 = schedule.meta_or("c1", 1);
  for (std::size_t p = 0; p < schedule.crash_times.size(); ++p) {
    if (!schedule.crash_times[p].has_value()) continue;
    Schedule candidate = schedule;
    candidate.crash_times[p].reset();
    candidates.push_back(std::move(candidate));
  }
  for (std::size_t i = 0; i < schedule.spacings.size(); ++i) {
    if (schedule.spacings[i].second <= c1) continue;
    Schedule candidate = schedule;
    candidate.spacings[i].second = c1;
    candidates.push_back(std::move(candidate));
  }
  for (std::size_t i = 0; i < schedule.delays.size(); ++i) {
    if (schedule.delays[i] <= 1) continue;
    Schedule candidate = schedule;
    candidate.delays[i] = 1;
    candidates.push_back(std::move(candidate));
  }
}

}  // namespace

std::vector<Schedule> shrink_candidates(const Schedule& schedule) {
  std::vector<Schedule> candidates;
  switch (schedule.model) {
    case Model::kSync: sync_candidates(schedule, candidates); break;
    case Model::kAsync: async_candidates(schedule, candidates); break;
    case Model::kSemiSync: semisync_candidates(schedule, candidates); break;
  }
  return candidates;
}

ShrinkResult shrink(const Schedule& schedule,
                    const ShrinkOracle& still_fails) {
  ShrinkResult result;
  result.schedule = schedule;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    const std::size_t current = result.schedule.choice_count();
    for (Schedule& candidate : shrink_candidates(result.schedule)) {
      if (candidate.choice_count() >= current) continue;
      ++result.oracle_calls;
      if (!still_fails(candidate)) continue;
      result.schedule = std::move(candidate);
      ++result.accepted;
      progressed = true;
      break;  // restart from the reduced schedule
    }
  }
  return result;
}

}  // namespace psph::check
