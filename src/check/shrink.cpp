#include "check/shrink.h"

#include <algorithm>
#include <set>

namespace psph::check {

namespace {

void sync_candidates(const Schedule& schedule,
                     std::vector<Schedule>& candidates) {
  const int n = static_cast<int>(schedule.meta_or("n", 0));
  // Alive set entering each round, for computing that round's survivors.
  std::set<sim::ProcessId> alive;
  for (int p = 0; p < n; ++p) alive.insert(p);

  for (std::size_t r = 0; r < schedule.sync_rounds.size(); ++r) {
    const sim::SyncRoundPlan& plan = schedule.sync_rounds[r];
    std::set<sim::ProcessId> survivors = alive;
    for (const sim::ProcessId crasher : plan.crash) survivors.erase(crasher);

    for (std::size_t c = 0; c < plan.crash.size(); ++c) {
      const sim::ProcessId crasher = plan.crash[c];
      // Un-crash: the process runs to completion (later plans never name
      // it, so they stay legal — old survivor sets only grow).
      {
        Schedule candidate = schedule;
        sim::SyncRoundPlan& edited = candidate.sync_rounds[r];
        edited.crash.erase(edited.crash.begin() +
                           static_cast<std::ptrdiff_t>(c));
        edited.delivered_to.erase(crasher);
        candidates.push_back(std::move(candidate));
      }
      // Deliver one more of the crasher's messages.
      const auto it = plan.delivered_to.find(crasher);
      for (const sim::ProcessId survivor : survivors) {
        if (it != plan.delivered_to.end() &&
            it->second.count(survivor) != 0) {
          continue;
        }
        Schedule candidate = schedule;
        candidate.sync_rounds[r].delivered_to[crasher].insert(survivor);
        candidates.push_back(std::move(candidate));
      }
    }
    alive = std::move(survivors);
  }
}

void async_candidates(const Schedule& schedule,
                      std::vector<Schedule>& candidates) {
  for (std::size_t r = 0; r < schedule.async_rounds.size(); ++r) {
    const sim::AsyncRoundPlan& plan = schedule.async_rounds[r];
    for (const auto& [pid, heard] : plan.heard) {
      for (const auto& [sender, sender_heard] : plan.heard) {
        (void)sender_heard;
        if (heard.count(sender) != 0) continue;
        Schedule candidate = schedule;
        candidate.async_rounds[r].heard[pid].insert(sender);
        candidates.push_back(std::move(candidate));
      }
    }
  }
}

void semisync_candidates(const Schedule& schedule,
                         std::vector<Schedule>& candidates) {
  const sim::Time c1 = schedule.meta_or("c1", 1);
  for (std::size_t p = 0; p < schedule.crash_times.size(); ++p) {
    if (!schedule.crash_times[p].has_value()) continue;
    Schedule candidate = schedule;
    candidate.crash_times[p].reset();
    candidates.push_back(std::move(candidate));
  }
  for (std::size_t i = 0; i < schedule.spacings.size(); ++i) {
    if (schedule.spacings[i].second <= c1) continue;
    Schedule candidate = schedule;
    candidate.spacings[i].second = c1;
    candidates.push_back(std::move(candidate));
  }
  for (std::size_t i = 0; i < schedule.delays.size(); ++i) {
    if (schedule.delays[i] <= 1) continue;
    Schedule candidate = schedule;
    candidate.delays[i] = 1;
    candidates.push_back(std::move(candidate));
  }
}

void quorum_candidates(const Schedule& schedule,
                       std::vector<Schedule>& candidates) {
  // Un-corrupt one process (its injections in every round go with it;
  // replay then treats it as a silent correct process).
  for (std::size_t c = 0; c < schedule.corrupt.size(); ++c) {
    const sim::ProcessId byz = schedule.corrupt[c];
    Schedule candidate = schedule;
    candidate.corrupt.erase(candidate.corrupt.begin() +
                            static_cast<std::ptrdiff_t>(c));
    for (sim::ByzRoundPlan& plan : candidate.quorum_rounds) {
      plan.inject.erase(
          std::remove_if(plan.inject.begin(), plan.inject.end(),
                         [&](const sim::ByzInject& inject) {
                           return inject.byz == byz;
                         }),
          plan.inject.end());
    }
    candidates.push_back(std::move(candidate));
  }
  for (std::size_t r = 0; r < schedule.quorum_rounds.size(); ++r) {
    const sim::ByzRoundPlan& plan = schedule.quorum_rounds[r];
    // Un-crash (the replay sanitizer then ignores now-invalid drops of
    // that sender; separate remove-drop edits clean those up).
    for (std::size_t i = 0; i < plan.crash.size(); ++i) {
      Schedule candidate = schedule;
      auto& edited = candidate.quorum_rounds[r].crash;
      edited.erase(edited.begin() + static_cast<std::ptrdiff_t>(i));
      candidates.push_back(std::move(candidate));
    }
    // Deliver one deferred / dropped message on time.
    for (std::size_t i = 0; i < plan.defer.size(); ++i) {
      Schedule candidate = schedule;
      auto& edited = candidate.quorum_rounds[r].defer;
      edited.erase(edited.begin() + static_cast<std::ptrdiff_t>(i));
      candidates.push_back(std::move(candidate));
    }
    for (std::size_t i = 0; i < plan.drop.size(); ++i) {
      Schedule candidate = schedule;
      auto& edited = candidate.quorum_rounds[r].drop;
      edited.erase(edited.begin() + static_cast<std::ptrdiff_t>(i));
      candidates.push_back(std::move(candidate));
    }
    // Silence one injection.
    for (std::size_t i = 0; i < plan.inject.size(); ++i) {
      Schedule candidate = schedule;
      auto& edited = candidate.quorum_rounds[r].inject;
      edited.erase(edited.begin() + static_cast<std::ptrdiff_t>(i));
      candidates.push_back(std::move(candidate));
    }
  }
  // Retract one false suspicion (truthful ones carry no choice weight, so
  // removing them could not decrease choice_count and is never proposed).
  std::set<sim::ProcessId> failed(schedule.corrupt.begin(),
                                  schedule.corrupt.end());
  for (const sim::ByzRoundPlan& plan : schedule.quorum_rounds) {
    failed.insert(plan.crash.begin(), plan.crash.end());
  }
  for (std::size_t s = 0; s < schedule.fd_samples.size(); ++s) {
    const FdSample& sample = schedule.fd_samples[s];
    for (std::size_t i = 0; i < sample.suspected.size(); ++i) {
      if (failed.count(sample.suspected[i]) != 0) continue;
      Schedule candidate = schedule;
      auto& edited = candidate.fd_samples[s].suspected;
      edited.erase(edited.begin() + static_cast<std::ptrdiff_t>(i));
      candidates.push_back(std::move(candidate));
    }
  }
}

}  // namespace

std::vector<Schedule> shrink_candidates(const Schedule& schedule) {
  std::vector<Schedule> candidates;
  switch (schedule.model) {
    case Model::kSync: sync_candidates(schedule, candidates); break;
    case Model::kAsync: async_candidates(schedule, candidates); break;
    case Model::kSemiSync: semisync_candidates(schedule, candidates); break;
    case Model::kQuorum: quorum_candidates(schedule, candidates); break;
  }
  return candidates;
}

ShrinkResult shrink(const Schedule& schedule,
                    const ShrinkOracle& still_fails) {
  ShrinkResult result;
  result.schedule = schedule;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    const std::size_t current = result.schedule.choice_count();
    for (Schedule& candidate : shrink_candidates(result.schedule)) {
      if (candidate.choice_count() >= current) continue;
      ++result.oracle_calls;
      if (!still_fails(candidate)) continue;
      result.schedule = std::move(candidate);
      ++result.accepted;
      progressed = true;
      break;  // restart from the reduced schedule
    }
  }
  return result;
}

}  // namespace psph::check
