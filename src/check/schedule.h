#pragma once

// First-class adversary schedules: record, serialize, replay.
//
// The paper's models are *sets of runs* selected by an adversary; related
// work (generalized adversary-computability theory, message-adversary
// characterizations) treats the adversary itself as the model's defining
// object. Operationally that means every adversary decision our executors
// consume — sync crash plans, async heard-sets, semi-sync step spacings,
// delivery delays, and crash times — must be capturable into a value that
// can be saved, diffed, minimized, and replayed bit-for-bit.
//
// A Schedule is exactly that value. Recording wrappers intercept a live
// adversary and append its answers; replay adversaries feed a stored
// Schedule back to the executor. Because the executors are deterministic
// given the adversary's answers and the inputs (which the Schedule also
// carries), replaying a recorded schedule reproduces the original Trace /
// SemiSyncResult bit-identically — the property check_test enforces for all
// three models.
//
// Replay is *total*: a schedule edited by the shrinker may perturb the
// semi-sync event interleaving, so replay adversaries fall back to the
// least-adversarial answer (no crash, minimal spacing, delay 1) once a
// recorded stream is exhausted. An unedited recording never hits the
// fallback.
//
// On disk a schedule travels as a sealed PayloadKind::kSchedule envelope
// (store/serialize.h), so truncation and bit-rot are detected on load.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/adversary.h"
#include "sim/byzantine.h"
#include "sim/failure_detector.h"
#include "sim/semisync_executor.h"
#include "store/serialize.h"

namespace psph::check {

enum class Model : std::uint8_t {
  kSync = 0,
  kAsync = 1,
  kSemiSync = 2,
  kQuorum = 3,  // Byzantine/failure-detector quorum executor
};

const char* model_name(Model model);

/// One failure-detector answer: what `observer` was told at `round`.
/// Recorded in query order; replay matches on (observer, round) so shrink
/// edits elsewhere in the schedule cannot misalign the oracle stream.
struct FdSample {
  sim::ProcessId observer = -1;
  int round = 0;
  std::vector<sim::ProcessId> suspected;

  bool operator==(const FdSample&) const = default;
};

/// One run's complete adversary decisions plus the inputs and parameters
/// needed to re-execute it. Only the section matching `model` is populated.
struct Schedule {
  Model model = Model::kSync;

  /// Reproduction parameters: "protocol", "n", "f", "k", "seed", and for
  /// the semi-synchronous model "c1", "c2", "d", "max_time". The soak
  /// engine reads these back on replay; unknown keys round-trip untouched.
  std::map<std::string, std::int64_t> meta;

  /// Input value of each process (index = pid).
  std::vector<std::int64_t> inputs;

  // --- sync: one plan per round, index = round - 1 ---
  std::vector<sim::SyncRoundPlan> sync_rounds;

  // --- async: one plan per round, index = round - 1 ---
  std::vector<sim::AsyncRoundPlan> async_rounds;

  // --- semisync: crash decisions by pid; spacing/delay answers in the
  // exact order the executor asked for them ---
  std::vector<std::optional<sim::Time>> crash_times;
  std::vector<std::pair<sim::ProcessId, sim::Time>> spacings;
  std::vector<sim::Time> delays;

  // --- quorum: corrupt set, one Byzantine plan per round (index =
  // round - 1), and the failure-detector answer stream. These sections
  // only exist in schedule-envelope v2; v1 files load with them empty. ---
  std::vector<sim::ProcessId> corrupt;
  std::vector<sim::ByzRoundPlan> quorum_rounds;
  std::vector<FdSample> fd_samples;

  bool operator==(const Schedule&) const = default;

  std::int64_t meta_or(const std::string& key, std::int64_t fallback) const;

  /// Total "adversary interference" in this schedule: crashes, withheld
  /// crasher deliveries, withheld async messages, excess step spacing over
  /// c1, and excess delivery delay over 1. The shrinker only accepts edits
  /// that strictly decrease this count, so minimization terminates and the
  /// minimized schedule provably contains fewer adversary choices.
  std::size_t choice_count() const;

  /// Human-readable one-line summary ("sync 3 rounds, 2 crashes, ...").
  std::string summary() const;
};

// ---- recording wrappers (pass-through + append to a Schedule) ----

class RecordingSyncAdversary : public sim::SyncAdversary {
 public:
  RecordingSyncAdversary(sim::SyncAdversary& inner, Schedule& out)
      : inner_(inner), out_(out) {}

  sim::SyncRoundPlan plan_round(int round,
                                const std::vector<sim::ProcessId>& alive)
      override;

 private:
  sim::SyncAdversary& inner_;
  Schedule& out_;
};

class RecordingAsyncAdversary : public sim::AsyncAdversary {
 public:
  RecordingAsyncAdversary(sim::AsyncAdversary& inner, Schedule& out)
      : inner_(inner), out_(out) {}

  sim::AsyncRoundPlan plan_round(int round,
                                 const std::vector<sim::ProcessId>& participants,
                                 int min_heard) override;

 private:
  sim::AsyncAdversary& inner_;
  Schedule& out_;
};

class RecordingSemiSyncAdversary : public sim::SemiSyncAdversary {
 public:
  RecordingSemiSyncAdversary(sim::SemiSyncAdversary& inner, Schedule& out)
      : inner_(inner), out_(out) {}

  sim::Time step_spacing(sim::ProcessId pid, sim::Time now) override;
  sim::Time delivery_delay(const sim::SemiSyncMessage& msg) override;
  std::optional<sim::Time> crash_time(sim::ProcessId pid) override;

 private:
  sim::SemiSyncAdversary& inner_;
  Schedule& out_;
};

class RecordingByzantineAdversary : public sim::ByzantineAdversary {
 public:
  RecordingByzantineAdversary(sim::ByzantineAdversary& inner, Schedule& out)
      : inner_(inner), out_(out) {}

  std::vector<sim::ProcessId> corrupt(int num_processes,
                                      int max_byzantine) override;
  sim::ByzRoundPlan plan_round(int round,
                               const std::vector<sim::PendingMessage>& in_flight,
                               const std::vector<sim::ProcessId>& alive,
                               int crash_budget) override;

 private:
  sim::ByzantineAdversary& inner_;
  Schedule& out_;
};

/// Records the oracle's answer stream and pins its settle horizon into
/// meta["fd_settle"], so replay reproduces the executor's quiescence
/// timing exactly.
class RecordingFailureDetector : public sim::FailureDetector {
 public:
  RecordingFailureDetector(sim::FailureDetector& inner, Schedule& out);

  std::vector<sim::ProcessId> suspects(
      sim::ProcessId observer, int round,
      const std::vector<sim::ProcessId>& crashed) override;
  int settle_rounds() const override { return inner_.settle_rounds(); }

 private:
  sim::FailureDetector& inner_;
  Schedule& out_;
};

// ---- replay adversaries (feed a stored Schedule back) ----

/// Replays recorded sync round plans; rounds beyond the recording are
/// failure-free.
class ReplaySyncAdversary : public sim::SyncAdversary {
 public:
  explicit ReplaySyncAdversary(const Schedule& schedule)
      : schedule_(schedule) {}

  sim::SyncRoundPlan plan_round(int round,
                                const std::vector<sim::ProcessId>& alive)
      override;

 private:
  const Schedule& schedule_;
};

/// Replays recorded async round plans; rounds beyond the recording deliver
/// everything to everyone.
class ReplayAsyncAdversary : public sim::AsyncAdversary {
 public:
  explicit ReplayAsyncAdversary(const Schedule& schedule)
      : schedule_(schedule) {}

  sim::AsyncRoundPlan plan_round(int round,
                                 const std::vector<sim::ProcessId>& participants,
                                 int min_heard) override;

 private:
  const Schedule& schedule_;
};

/// Replays recorded semi-sync decision streams in call order; exhausted
/// streams fall back to spacing c1 (from meta) and delay 1.
class ReplaySemiSyncAdversary : public sim::SemiSyncAdversary {
 public:
  explicit ReplaySemiSyncAdversary(const Schedule& schedule);

  sim::Time step_spacing(sim::ProcessId pid, sim::Time now) override;
  sim::Time delivery_delay(const sim::SemiSyncMessage& msg) override;
  std::optional<sim::Time> crash_time(sim::ProcessId pid) override;

 private:
  const Schedule& schedule_;
  sim::Time min_spacing_;
  std::size_t next_spacing_ = 0;
  std::size_t next_delay_ = 0;
};

/// Replays the recorded corrupt set and round plans. Because the shrinker
/// edits schedules (removing crashes, drops, injections, corruptions),
/// every plan is sanitized against the executor's current state instead of
/// trusted: crashes are filtered to alive processes within budget, drops
/// to in-flight ids with crashed senders, defers to in-flight ids, and
/// injections to processes in the (replayed) corrupt set. Rounds beyond
/// the recording get the empty (least adversarial) plan.
class ReplayByzantineAdversary : public sim::ByzantineAdversary {
 public:
  explicit ReplayByzantineAdversary(const Schedule& schedule)
      : schedule_(schedule) {}

  std::vector<sim::ProcessId> corrupt(int num_processes,
                                      int max_byzantine) override;
  sim::ByzRoundPlan plan_round(int round,
                               const std::vector<sim::PendingMessage>& in_flight,
                               const std::vector<sim::ProcessId>& alive,
                               int crash_budget) override;

 private:
  const Schedule& schedule_;
  std::vector<sim::ProcessId> corrupt_;
  int num_processes_ = 0;
};

/// Replays recorded failure-detector answers, matched by (observer,
/// round); queries with no recorded sample fall back to the truthful
/// answer (exactly the crashed set — complete and accurate, the least
/// adversarial oracle). settle_rounds comes from meta["fd_settle"].
class ReplayFailureDetector : public sim::FailureDetector {
 public:
  explicit ReplayFailureDetector(const Schedule& schedule);

  std::vector<sim::ProcessId> suspects(
      sim::ProcessId observer, int round,
      const std::vector<sim::ProcessId>& crashed) override;
  int settle_rounds() const override { return settle_rounds_; }

 private:
  std::map<std::pair<sim::ProcessId, int>, const FdSample*> by_query_;
  int settle_rounds_ = 1;
};

// ---- serialization ----

/// Payload format: v2 payloads begin with the marker byte 0xF2, then the
/// model tag and every section including the quorum ones. v1 payloads
/// (written before the quorum model existed) begin directly with a model
/// tag <= 2; they still decode, with the quorum sections empty. The
/// sealed-envelope layer (magic, size, checksum) is unchanged.
void encode_schedule(store::ByteWriter& out, const Schedule& schedule);
Schedule decode_schedule(store::ByteReader& in);

/// Sealed kSchedule envelope round-trip (bit-rot and truncation detected on
/// deserialize via store::SerializationError).
std::vector<std::uint8_t> serialize_schedule(const Schedule& schedule);
Schedule deserialize_schedule(const std::vector<std::uint8_t>& bytes);

/// File helpers; save writes atomically-ish (whole buffer, single stream).
/// load throws std::runtime_error on a missing file and SerializationError
/// on a corrupt one.
void save_schedule(const std::string& path, const Schedule& schedule);
Schedule load_schedule(const std::string& path);

}  // namespace psph::check
