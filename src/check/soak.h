#pragma once

// The soak engine: run a protocol under a seeded random adversary with
// every adversary decision recorded, monitor the outcome, and replay any
// schedule bit-for-bit later.
//
// One RunSpec names a (model, protocol, n, f, k, seed) point; run_recorded
// executes it with a RecordingXxxAdversary wrapped around the model's
// random adversary and returns a RunOutcome whose Schedule reproduces the
// run exactly: replay_schedule(outcome.schedule) re-executes with a fresh
// ViewRegistry and a ReplayXxxAdversary and yields identical decisions,
// trace states, and crash records (StateIds are deterministic in interning
// order, so even they match). The schedule's meta block carries the spec,
// which makes a saved schedule file a complete self-describing repro.
//
// soak() drives many seeds (seed, seed+1, ...) and stops at the first run
// any invariant monitor rejects; the psph_soak bench and the soak_smoke
// test are thin wrappers around it. The shrinker's oracle is
// replay_schedule too: a candidate counterexample "still fails" iff its
// replay still trips a monitor.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "check/monitors.h"
#include "check/schedule.h"

namespace psph::check {

enum class ProtocolKind : std::uint8_t {
  kFloodSet = 0,       // sync, k-set, ⌊f/k⌋+1 rounds
  kEarlyStopping = 1,  // sync consensus, min(f'+2, f+1) rounds
  kAsyncKSet = 2,      // async, k = f+1, one round
  kSemiSyncKSet = 3,   // semi-sync FloodMin over timeouts
  kAbaByz = 4,         // quorum, Bracha-style Byzantine agreement, N > 3T
  kNbacFd = 5,         // quorum, NBAC over a failure-detector oracle
};

const char* protocol_name(ProtocolKind protocol);

/// The model a protocol runs on (fixed per protocol).
Model protocol_model(ProtocolKind protocol);

struct RunSpec {
  ProtocolKind protocol = ProtocolKind::kFloodSet;
  int n = 4;  // number of processes
  int f = 1;  // failure budget handed to the adversary / protocol
  int k = 1;  // protocol agreement degree (async ignores it: k = f+1)
  /// Agreement degree the monitors check; -1 = the protocol's effective k.
  /// Tests set this tighter than k to plant violations on purpose.
  int monitor_k = -1;
  std::uint64_t seed = 1;
  /// Inputs by pid; empty = pid i gets input i (all-distinct worst case).
  std::vector<std::int64_t> inputs;
  /// Semi-synchronous timing (ignored by the round-based models).
  sim::Time c1 = 1;
  sim::Time c2 = 2;
  sim::Time d = 4;
  sim::Time max_time = 1'000'000;

  /// Quorum model only: Byzantine corruption budget T (aba_byz), which
  /// failure-detector oracle nbac_fd runs over (0 = someFail-style,
  /// 1 = eventually-strong ◇S-style), and the adversary-controlled round
  /// horizon before the drain phase. nbac_fd's crash budget is `f`.
  int t = 1;
  int fd_kind = 0;
  int max_rounds = 48;

  /// The agreement degree the monitors use.
  int effective_monitor_k() const;
};

/// One executed (or replayed) run: its schedule, the monitored record, and
/// any violations. The views/trace/semisync objects are owned here so the
/// record's borrowed pointers stay valid for the outcome's lifetime.
struct RunOutcome {
  Schedule schedule;
  RunRecord record;
  std::vector<Violation> violations;

  std::shared_ptr<core::ViewRegistry> views;
  std::shared_ptr<sim::Trace> trace;
  std::shared_ptr<sim::SemiSyncResult> semisync;
  std::shared_ptr<protocols::AbaByzOutcome> aba;
  std::shared_ptr<protocols::NbacFdOutcome> nbac;

  bool ok() const { return violations.empty(); }
};

/// Runs `spec` under the model's seeded random adversary, recording every
/// adversary decision, and monitors the result.
RunOutcome run_recorded(const RunSpec& spec);

/// Re-executes a schedule (recorded or shrunk) through the matching replay
/// adversary and monitors the result. The spec is reconstructed from the
/// schedule's meta block.
RunOutcome replay_schedule(const Schedule& schedule);

/// Reconstructs the RunSpec a schedule was recorded from (meta block).
RunSpec spec_from_schedule(const Schedule& schedule);

/// Throws InvariantViolation (first violation + full schedule) unless the
/// outcome is clean.
void require_ok(const RunOutcome& outcome);

struct SoakReport {
  std::size_t runs = 0;
  std::size_t violations = 0;
  /// First offending run's details, if any.
  std::vector<Violation> first_violations;
  Schedule first_schedule;

  bool ok() const { return violations == 0; }
};

/// Runs `runs` executions of `base` at seeds base.seed, base.seed+1, ...;
/// stops at the first run with a violation.
SoakReport soak(const RunSpec& base, std::size_t runs);

}  // namespace psph::check
