#pragma once

// Fault-injecting store::FsOps.
//
// Wraps a real (or otherwise inner) FsOps and injects the classic storage
// failure modes at chosen operation indices:
//
//   * failed write      — write_file throws (ENOSPC / I/O error);
//   * short write       — write_file persists only a prefix, then reports
//                         success (torn file on disk, caller unaware);
//   * failed rename     — publish step throws, temp file stays;
//   * failed dir fsync  — the durability barrier itself fails;
//   * bit-rot read      — read_file returns the bytes with one bit flipped;
//   * truncated read    — read_file returns only a prefix.
//
// Operation indices count per category from 0 in call order, so a test can
// say "fail the second rename" deterministically. Counters are mutex-
// protected: sweeps call the store from the parallel pool.
//
// The properties under test (fault_test.cpp): a fault during save degrades
// to a miss + recompute on the next run, and a fault during load degrades
// to a miss — the store must *never* return plausible-but-wrong bytes.

#include <cstddef>
#include <mutex>
#include <set>

#include "store/fs_ops.h"

namespace psph::check {

struct FaultPlan {
  /// write_file calls (0-based) that throw after writing nothing.
  std::set<std::size_t> fail_writes;
  /// write_file calls that silently persist only the first half.
  std::set<std::size_t> short_writes;
  /// rename calls that throw.
  std::set<std::size_t> fail_renames;
  /// fsync_dir calls that throw.
  std::set<std::size_t> fail_dir_syncs;
  /// read_file calls whose result comes back with bit 0 of byte
  /// size/2 flipped (empty files are returned unchanged).
  std::set<std::size_t> corrupt_reads;
  /// read_file calls whose result is truncated to the first half.
  std::set<std::size_t> truncate_reads;
};

class FaultyFsOps : public store::FsOps {
 public:
  /// `inner` defaults to the real filesystem.
  explicit FaultyFsOps(FaultPlan plan,
                       std::shared_ptr<store::FsOps> inner = nullptr);

  std::optional<std::vector<std::uint8_t>> read_file(
      const std::filesystem::path& path) override;
  void write_file(const std::filesystem::path& path, const std::uint8_t* data,
                  std::size_t size) override;
  void rename(const std::filesystem::path& from,
              const std::filesystem::path& to) override;
  void fsync_dir(const std::filesystem::path& dir) override;

  std::size_t reads_seen() const;
  std::size_t writes_seen() const;
  std::size_t renames_seen() const;
  std::size_t dir_syncs_seen() const;
  /// Total faults actually injected so far.
  std::size_t faults_injected() const;

 private:
  FaultPlan plan_;
  std::shared_ptr<store::FsOps> inner_;
  mutable std::mutex mutex_;
  std::size_t reads_ = 0;
  std::size_t writes_ = 0;
  std::size_t renames_ = 0;
  std::size_t dir_syncs_ = 0;
  std::size_t injected_ = 0;
};

}  // namespace psph::check
