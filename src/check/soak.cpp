#include "check/soak.h"

#include <algorithm>
#include <stdexcept>

#include "protocols/async_kset.h"
#include "protocols/early_stopping.h"
#include "protocols/floodset.h"
#include "protocols/semisync_kset.h"
#include "util/random.h"

namespace psph::check {

const char* protocol_name(ProtocolKind protocol) {
  switch (protocol) {
    case ProtocolKind::kFloodSet: return "floodset";
    case ProtocolKind::kEarlyStopping: return "early_stopping";
    case ProtocolKind::kAsyncKSet: return "async_kset";
    case ProtocolKind::kSemiSyncKSet: return "semisync_kset";
    case ProtocolKind::kAbaByz: return "aba_byz";
    case ProtocolKind::kNbacFd: return "nbac_fd";
  }
  return "?";
}

Model protocol_model(ProtocolKind protocol) {
  switch (protocol) {
    case ProtocolKind::kFloodSet:
    case ProtocolKind::kEarlyStopping:
      return Model::kSync;
    case ProtocolKind::kAsyncKSet:
      return Model::kAsync;
    case ProtocolKind::kSemiSyncKSet:
      return Model::kSemiSync;
    case ProtocolKind::kAbaByz:
    case ProtocolKind::kNbacFd:
      return Model::kQuorum;
  }
  return Model::kSync;
}

int RunSpec::effective_monitor_k() const {
  if (monitor_k >= 0) return monitor_k;
  switch (protocol) {
    // The async protocol achieves k = f + 1 regardless of the k field.
    case ProtocolKind::kAsyncKSet:
      return f + 1;
    // Binary Byzantine agreement: one value.
    case ProtocolKind::kAbaByz:
      return 1;
    // Weak NBAC: commit/abort divergence is reachable by design
    // (Guerraoui's hardness result), so agreement is not an invariant.
    // Pinning monitor_k = 1 plants a demonstration.
    case ProtocolKind::kNbacFd:
      return 2;
    default:
      return k;
  }
}

namespace {

std::vector<std::int64_t> resolve_inputs(const RunSpec& spec) {
  if (!spec.inputs.empty()) return spec.inputs;
  std::vector<std::int64_t> inputs;
  if (protocol_model(spec.protocol) == Model::kQuorum) {
    // Binary protocols: seed-derived random bits (the all-distinct default
    // below would be out of domain). A labeled sub-stream keeps the bits
    // independent of every other consumer of the seed.
    util::Rng rng = util::Rng(spec.seed).split("inputs");
    for (int p = 0; p < spec.n; ++p) {
      inputs.push_back(rng.next_bool(0.5) ? 1 : 0);
    }
    return inputs;
  }
  for (int p = 0; p < spec.n; ++p) inputs.push_back(p);
  return inputs;
}

Schedule base_schedule(const RunSpec& spec) {
  Schedule schedule;
  schedule.model = protocol_model(spec.protocol);
  schedule.meta["protocol"] = static_cast<std::int64_t>(spec.protocol);
  schedule.meta["n"] = spec.n;
  schedule.meta["f"] = spec.f;
  schedule.meta["k"] = spec.k;
  schedule.meta["monitor_k"] = spec.monitor_k;
  schedule.meta["seed"] = static_cast<std::int64_t>(spec.seed);
  if (schedule.model == Model::kSemiSync) {
    schedule.meta["c1"] = spec.c1;
    schedule.meta["c2"] = spec.c2;
    schedule.meta["d"] = spec.d;
    schedule.meta["max_time"] = spec.max_time;
  }
  if (schedule.model == Model::kQuorum) {
    schedule.meta["t"] = spec.t;
    schedule.meta["fd_kind"] = spec.fd_kind;
    schedule.meta["max_rounds"] = spec.max_rounds;
  }
  schedule.inputs = resolve_inputs(spec);
  return schedule;
}

std::size_t total_crashes(const sim::Trace& trace) {
  std::size_t count = 0;
  for (const auto& round : trace.crashed_in) count += round.size();
  return count;
}

/// Runs the spec's protocol under the given (recording or replay) adversary
/// — exactly one of the three pointers is non-null, matching the model —
/// then monitors the result. `schedule` is moved into the outcome after the
/// run, by which point a recording wrapper has filled it in.
RunOutcome execute(const RunSpec& spec, Schedule& schedule,
                   sim::SyncAdversary* sync_adversary,
                   sim::AsyncAdversary* async_adversary,
                   sim::SemiSyncAdversary* semisync_adversary,
                   sim::ByzantineAdversary* byz_adversary = nullptr,
                   sim::FailureDetector* detector = nullptr) {
  const std::vector<std::int64_t> inputs = schedule.inputs;
  RunOutcome out;
  RunRecord record;
  record.model = schedule.model;
  record.n = spec.n;
  record.f = spec.f;
  record.k = spec.effective_monitor_k();
  record.inputs = inputs;

  switch (spec.protocol) {
    case ProtocolKind::kFloodSet: {
      out.views = std::make_shared<core::ViewRegistry>();
      protocols::FloodSetConfig config;
      config.num_processes = spec.n;
      config.max_failures = spec.f;
      config.k = spec.k;
      protocols::FloodSetOutcome result =
          protocols::run_floodset(inputs, config, *sync_adversary, *out.views);
      out.trace = std::make_shared<sim::Trace>(std::move(result.trace));
      for (const auto& [pid, value] : result.decisions) {
        sim::DecisionEvent event;
        event.pid = pid;
        event.value = value;
        event.round = result.rounds_used;
        record.decisions.push_back(event);
      }
      record.round_bound = protocols::floodset_rounds(config);
      break;
    }
    case ProtocolKind::kEarlyStopping: {
      out.views = std::make_shared<core::ViewRegistry>();
      protocols::EarlyStoppingConfig config;
      config.num_processes = spec.n;
      config.max_failures = spec.f;
      protocols::EarlyStoppingOutcome result = protocols::run_early_stopping(
          inputs, config, *sync_adversary, *out.views);
      out.trace = std::make_shared<sim::Trace>(std::move(result.trace));
      for (const auto& [pid, decision] : result.decisions) {
        sim::DecisionEvent event;
        event.pid = pid;
        event.value = decision.value;
        event.round = decision.round;
        record.decisions.push_back(event);
      }
      const int actual = static_cast<int>(total_crashes(*out.trace));
      record.round_bound = std::min(actual + 2, spec.f + 1);
      break;
    }
    case ProtocolKind::kAsyncKSet: {
      out.views = std::make_shared<core::ViewRegistry>();
      protocols::AsyncKSetConfig config;
      config.num_processes = spec.n;
      config.max_failures = spec.f;
      config.rounds = 1;
      protocols::AsyncKSetOutcome result = protocols::run_async_kset(
          inputs, config, *async_adversary, *out.views);
      out.trace = std::make_shared<sim::Trace>(std::move(result.trace));
      for (const auto& [pid, value] : result.decisions) {
        sim::DecisionEvent event;
        event.pid = pid;
        event.value = value;
        event.round = config.rounds;
        record.decisions.push_back(event);
      }
      record.round_bound = config.rounds;
      break;
    }
    case ProtocolKind::kSemiSyncKSet: {
      protocols::SemiSyncKSetConfig config;
      config.timing.c1 = spec.c1;
      config.timing.c2 = spec.c2;
      config.timing.d = spec.d;
      config.timing.num_processes = spec.n;
      config.timing.max_time = spec.max_time;
      config.max_failures = spec.f;
      config.k = spec.k;
      sim::SemiSyncResult result =
          sim::run_semisync(inputs, config.timing,
                            protocols::make_semisync_kset(config),
                            *semisync_adversary);
      out.semisync = std::make_shared<sim::SemiSyncResult>(std::move(result));
      for (const auto& [pid, event] : out.semisync->decisions) {
        (void)pid;
        record.decisions.push_back(event);
      }
      const std::vector<sim::Time> steps = protocols::round_step_schedule(
          config);
      record.time_bound = steps.empty() ? spec.max_time
                                        : steps.back() * spec.c2;
      record.require_all_alive_decided = true;
      record.all_alive_decided = out.semisync->all_alive_decided;
      record.actual_failures =
          static_cast<int>(out.semisync->crashes.size());
      break;
    }
    case ProtocolKind::kAbaByz: {
      protocols::AbaByzConfig config;
      config.num_processes = spec.n;
      config.max_byzantine = spec.t;
      config.max_rounds = spec.max_rounds;
      protocols::AbaByzOutcome result =
          protocols::run_aba_byz(inputs, config, *byz_adversary);
      out.aba = std::make_shared<protocols::AbaByzOutcome>(std::move(result));
      record.decisions = out.aba->trace.decisions;
      record.byz_t = spec.t;
      for (sim::ProcessId pid = 0; pid < spec.n; ++pid) {
        if (!std::binary_search(out.aba->trace.corrupt.begin(),
                                out.aba->trace.corrupt.end(), pid)) {
          record.correct.push_back(pid);
        }
      }
      record.quorum = &out.aba->trace;
      record.aba_certificates = &out.aba->certificates;
      record.aba_final_counts = &out.aba->final_counts;
      record.actual_failures =
          static_cast<int>(out.aba->trace.corrupt.size());
      break;
    }
    case ProtocolKind::kNbacFd: {
      protocols::NbacFdConfig config;
      config.num_processes = spec.n;
      config.max_crashes = spec.f;
      config.max_rounds = spec.max_rounds;
      protocols::NbacFdOutcome result =
          protocols::run_nbac_fd(inputs, config, *byz_adversary, *detector);
      out.nbac = std::make_shared<protocols::NbacFdOutcome>(std::move(result));
      record.decisions = out.nbac->trace.decisions;
      // ABORT (0) is a legal decision even when every vote is YES; the
      // obligation monitor owns validity for this protocol.
      record.validity_applies = false;
      record.quorum = &out.nbac->trace;
      record.nbac_justifications = &out.nbac->justifications;
      record.actual_failures =
          static_cast<int>(out.nbac->trace.crashes.size());
      break;
    }
  }

  if (out.trace != nullptr) {
    record.trace = out.trace.get();
    record.views = out.views.get();
    record.actual_failures = static_cast<int>(total_crashes(*out.trace));
  }
  out.schedule = std::move(schedule);
  out.record = std::move(record);
  out.violations = check_all(standard_monitors(out.record.model), out.record);
  return out;
}

}  // namespace

RunOutcome run_recorded(const RunSpec& spec) {
  Schedule schedule = base_schedule(spec);
  switch (schedule.model) {
    case Model::kSync: {
      sim::RandomSyncAdversary inner(util::Rng(spec.seed), spec.f);
      RecordingSyncAdversary recording(inner, schedule);
      return execute(spec, schedule, &recording, nullptr, nullptr);
    }
    case Model::kAsync: {
      sim::RandomAsyncAdversary inner{util::Rng(spec.seed)};
      RecordingAsyncAdversary recording(inner, schedule);
      return execute(spec, schedule, nullptr, &recording, nullptr);
    }
    case Model::kSemiSync: {
      sim::SemiSyncConfig timing;
      timing.c1 = spec.c1;
      timing.c2 = spec.c2;
      timing.d = spec.d;
      timing.num_processes = spec.n;
      timing.max_time = spec.max_time;
      protocols::SemiSyncKSetConfig kset;
      kset.timing = timing;
      kset.max_failures = spec.f;
      kset.k = spec.k;
      const std::vector<sim::Time> steps =
          protocols::round_step_schedule(kset);
      const sim::Time horizon =
          steps.empty() ? spec.d : steps.back() * spec.c2;
      sim::RandomSemiSyncAdversary inner(util::Rng(spec.seed), timing, spec.f,
                                         /*crash_probability=*/0.3, horizon);
      RecordingSemiSyncAdversary recording(inner, schedule);
      return execute(spec, schedule, nullptr, nullptr, &recording);
    }
    case Model::kQuorum: {
      const util::Rng root(spec.seed);
      const bool is_nbac = spec.protocol == ProtocolKind::kNbacFd;
      sim::RandomByzantineAdversary inner(
          root,
          is_nbac ? protocols::nbac_fd_alphabet()
                  : protocols::aba_byz_alphabet(),
          /*max_crashes=*/is_nbac ? spec.f : 0);
      RecordingByzantineAdversary recording(inner, schedule);
      if (!is_nbac) {
        return execute(spec, schedule, nullptr, nullptr, nullptr, &recording);
      }
      std::unique_ptr<sim::FailureDetector> oracle;
      if (spec.fd_kind == 1) {
        oracle = std::make_unique<sim::EventuallyStrongDetector>(
            root.split("fd"), spec.n);
      } else {
        oracle = std::make_unique<sim::SomeFailDetector>(root.split("fd"));
      }
      RecordingFailureDetector recording_fd(*oracle, schedule);
      return execute(spec, schedule, nullptr, nullptr, nullptr, &recording,
                     &recording_fd);
    }
  }
  throw std::logic_error("run_recorded: unknown model");
}

RunSpec spec_from_schedule(const Schedule& schedule) {
  RunSpec spec;
  spec.protocol =
      static_cast<ProtocolKind>(schedule.meta_or("protocol", 0));
  spec.n = static_cast<int>(schedule.meta_or("n", 0));
  spec.f = static_cast<int>(schedule.meta_or("f", 0));
  spec.k = static_cast<int>(schedule.meta_or("k", 1));
  spec.monitor_k = static_cast<int>(schedule.meta_or("monitor_k", -1));
  spec.seed = static_cast<std::uint64_t>(schedule.meta_or("seed", 0));
  spec.inputs = schedule.inputs;
  spec.c1 = schedule.meta_or("c1", 1);
  spec.c2 = schedule.meta_or("c2", 2);
  spec.d = schedule.meta_or("d", 4);
  spec.max_time = schedule.meta_or("max_time", 1'000'000);
  spec.t = static_cast<int>(schedule.meta_or("t", 1));
  spec.fd_kind = static_cast<int>(schedule.meta_or("fd_kind", 0));
  spec.max_rounds = static_cast<int>(schedule.meta_or("max_rounds", 48));
  return spec;
}

RunOutcome replay_schedule(const Schedule& schedule) {
  const RunSpec spec = spec_from_schedule(schedule);
  Schedule copy = schedule;
  switch (schedule.model) {
    case Model::kSync: {
      ReplaySyncAdversary adversary(schedule);
      return execute(spec, copy, &adversary, nullptr, nullptr);
    }
    case Model::kAsync: {
      ReplayAsyncAdversary adversary(schedule);
      return execute(spec, copy, nullptr, &adversary, nullptr);
    }
    case Model::kSemiSync: {
      ReplaySemiSyncAdversary adversary(schedule);
      return execute(spec, copy, nullptr, nullptr, &adversary);
    }
    case Model::kQuorum: {
      ReplayByzantineAdversary adversary(schedule);
      if (spec.protocol != ProtocolKind::kNbacFd) {
        return execute(spec, copy, nullptr, nullptr, nullptr, &adversary);
      }
      ReplayFailureDetector oracle(schedule);
      return execute(spec, copy, nullptr, nullptr, nullptr, &adversary,
                     &oracle);
    }
  }
  throw std::logic_error("replay_schedule: unknown model");
}

void require_ok(const RunOutcome& outcome) {
  if (outcome.ok()) return;
  throw InvariantViolation(outcome.violations.front(), outcome.schedule);
}

SoakReport soak(const RunSpec& base, std::size_t runs) {
  SoakReport report;
  for (std::size_t i = 0; i < runs; ++i) {
    RunSpec spec = base;
    spec.seed = base.seed + i;
    RunOutcome outcome = run_recorded(spec);
    ++report.runs;
    if (!outcome.ok()) {
      ++report.violations;
      report.first_violations = outcome.violations;
      report.first_schedule = std::move(outcome.schedule);
      break;
    }
  }
  return report;
}

}  // namespace psph::check
