#include "check/fault_fs.h"

#include <stdexcept>

namespace psph::check {

FaultyFsOps::FaultyFsOps(FaultPlan plan, std::shared_ptr<store::FsOps> inner)
    : plan_(std::move(plan)),
      inner_(inner ? std::move(inner) : store::FsOps::real()) {}

std::optional<std::vector<std::uint8_t>> FaultyFsOps::read_file(
    const std::filesystem::path& path) {
  bool corrupt = false;
  bool truncate = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t index = reads_++;
    corrupt = plan_.corrupt_reads.count(index) != 0;
    truncate = plan_.truncate_reads.count(index) != 0;
    if (corrupt || truncate) ++injected_;
  }
  std::optional<std::vector<std::uint8_t>> bytes = inner_->read_file(path);
  if (!bytes.has_value() || bytes->empty()) return bytes;
  if (truncate) bytes->resize(bytes->size() / 2);
  if (corrupt && !bytes->empty()) (*bytes)[bytes->size() / 2] ^= 0x01;
  return bytes;
}

void FaultyFsOps::write_file(const std::filesystem::path& path,
                             const std::uint8_t* data, std::size_t size) {
  bool fail = false;
  bool tear = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t index = writes_++;
    fail = plan_.fail_writes.count(index) != 0;
    tear = plan_.short_writes.count(index) != 0;
    if (fail || tear) ++injected_;
  }
  if (fail) {
    throw std::runtime_error("injected write failure: " + path.string());
  }
  if (tear) {
    // The torn prefix reaches disk and the caller is told all is well —
    // the worst honest-but-failing disk behavior.
    inner_->write_file(path, data, size / 2);
    return;
  }
  inner_->write_file(path, data, size);
}

void FaultyFsOps::rename(const std::filesystem::path& from,
                         const std::filesystem::path& to) {
  bool fail = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t index = renames_++;
    fail = plan_.fail_renames.count(index) != 0;
    if (fail) ++injected_;
  }
  if (fail) {
    throw std::runtime_error("injected rename failure: " + to.string());
  }
  inner_->rename(from, to);
}

void FaultyFsOps::fsync_dir(const std::filesystem::path& dir) {
  bool fail = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t index = dir_syncs_++;
    fail = plan_.fail_dir_syncs.count(index) != 0;
    if (fail) ++injected_;
  }
  if (fail) {
    throw std::runtime_error("injected dir fsync failure: " + dir.string());
  }
  inner_->fsync_dir(dir);
}

std::size_t FaultyFsOps::reads_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reads_;
}

std::size_t FaultyFsOps::writes_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return writes_;
}

std::size_t FaultyFsOps::renames_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return renames_;
}

std::size_t FaultyFsOps::dir_syncs_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dir_syncs_;
}

std::size_t FaultyFsOps::faults_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return injected_;
}

}  // namespace psph::check
