#include "check/schedule.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace psph::check {

const char* model_name(Model model) {
  switch (model) {
    case Model::kSync: return "sync";
    case Model::kAsync: return "async";
    case Model::kSemiSync: return "semisync";
  }
  return "?";
}

std::int64_t Schedule::meta_or(const std::string& key,
                               std::int64_t fallback) const {
  const auto it = meta.find(key);
  return it == meta.end() ? fallback : it->second;
}

std::size_t Schedule::choice_count() const {
  std::size_t count = 0;
  switch (model) {
    case Model::kSync: {
      // Alive set starts at {0..n-1} and shrinks by each round's crashes;
      // interference = crashes + messages withheld from survivors.
      const int n = static_cast<int>(meta_or("n", 0));
      std::set<sim::ProcessId> alive;
      for (int p = 0; p < n; ++p) alive.insert(p);
      for (const sim::SyncRoundPlan& plan : sync_rounds) {
        count += plan.crash.size();
        const std::size_t survivors = alive.size() - plan.crash.size();
        for (const sim::ProcessId crasher : plan.crash) {
          const auto it = plan.delivered_to.find(crasher);
          const std::size_t delivered =
              it == plan.delivered_to.end() ? 0 : it->second.size();
          count += survivors - std::min(survivors, delivered);
        }
        for (const sim::ProcessId crasher : plan.crash) alive.erase(crasher);
      }
      break;
    }
    case Model::kAsync: {
      // Interference = messages scheduled "late" (left out of heard-sets).
      for (const sim::AsyncRoundPlan& plan : async_rounds) {
        const std::size_t participants = plan.heard.size();
        for (const auto& [pid, heard] : plan.heard) {
          (void)pid;
          count += participants - std::min(participants, heard.size());
        }
      }
      break;
    }
    case Model::kSemiSync: {
      const sim::Time c1 = meta_or("c1", 1);
      for (const auto& crash : crash_times) {
        if (crash.has_value()) ++count;
      }
      for (const auto& [pid, spacing] : spacings) {
        (void)pid;
        if (spacing > c1) count += static_cast<std::size_t>(spacing - c1);
      }
      for (const sim::Time delay : delays) {
        if (delay > 1) count += static_cast<std::size_t>(delay - 1);
      }
      break;
    }
  }
  return count;
}

std::string Schedule::summary() const {
  std::ostringstream out;
  out << model_name(model) << " n=" << meta_or("n", 0);
  switch (model) {
    case Model::kSync: {
      std::size_t crashes = 0;
      for (const auto& plan : sync_rounds) crashes += plan.crash.size();
      out << " rounds=" << sync_rounds.size() << " crashes=" << crashes;
      break;
    }
    case Model::kAsync:
      out << " rounds=" << async_rounds.size();
      break;
    case Model::kSemiSync: {
      std::size_t crashes = 0;
      for (const auto& crash : crash_times) {
        if (crash.has_value()) ++crashes;
      }
      out << " steps=" << spacings.size() << " messages=" << delays.size()
          << " crashes=" << crashes;
      break;
    }
  }
  out << " choices=" << choice_count();
  return out.str();
}

// ---- recording ----

sim::SyncRoundPlan RecordingSyncAdversary::plan_round(
    int round, const std::vector<sim::ProcessId>& alive) {
  sim::SyncRoundPlan plan = inner_.plan_round(round, alive);
  out_.sync_rounds.push_back(plan);
  return plan;
}

sim::AsyncRoundPlan RecordingAsyncAdversary::plan_round(
    int round, const std::vector<sim::ProcessId>& participants,
    int min_heard) {
  sim::AsyncRoundPlan plan = inner_.plan_round(round, participants, min_heard);
  out_.async_rounds.push_back(plan);
  return plan;
}

sim::Time RecordingSemiSyncAdversary::step_spacing(sim::ProcessId pid,
                                                   sim::Time now) {
  const sim::Time spacing = inner_.step_spacing(pid, now);
  out_.spacings.emplace_back(pid, spacing);
  return spacing;
}

sim::Time RecordingSemiSyncAdversary::delivery_delay(
    const sim::SemiSyncMessage& msg) {
  const sim::Time delay = inner_.delivery_delay(msg);
  out_.delays.push_back(delay);
  return delay;
}

std::optional<sim::Time> RecordingSemiSyncAdversary::crash_time(
    sim::ProcessId pid) {
  const std::optional<sim::Time> crash = inner_.crash_time(pid);
  if (pid >= 0) {
    if (out_.crash_times.size() <= static_cast<std::size_t>(pid)) {
      out_.crash_times.resize(static_cast<std::size_t>(pid) + 1);
    }
    out_.crash_times[static_cast<std::size_t>(pid)] = crash;
  }
  return crash;
}

// ---- replay ----

sim::SyncRoundPlan ReplaySyncAdversary::plan_round(
    int round, const std::vector<sim::ProcessId>& alive) {
  (void)alive;
  const std::size_t index = static_cast<std::size_t>(round - 1);
  if (index >= schedule_.sync_rounds.size()) return {};
  return schedule_.sync_rounds[index];
}

sim::AsyncRoundPlan ReplayAsyncAdversary::plan_round(
    int round, const std::vector<sim::ProcessId>& participants,
    int min_heard) {
  (void)min_heard;
  const std::size_t index = static_cast<std::size_t>(round - 1);
  if (index < schedule_.async_rounds.size()) {
    return schedule_.async_rounds[index];
  }
  // Past the recording: everyone hears everyone (least adversarial).
  sim::AsyncRoundPlan plan;
  const std::set<sim::ProcessId> all(participants.begin(), participants.end());
  for (const sim::ProcessId pid : participants) plan.heard[pid] = all;
  return plan;
}

ReplaySemiSyncAdversary::ReplaySemiSyncAdversary(const Schedule& schedule)
    : schedule_(schedule), min_spacing_(schedule.meta_or("c1", 1)) {}

sim::Time ReplaySemiSyncAdversary::step_spacing(sim::ProcessId pid,
                                                sim::Time now) {
  (void)pid;
  (void)now;
  if (next_spacing_ < schedule_.spacings.size()) {
    return schedule_.spacings[next_spacing_++].second;
  }
  return min_spacing_;
}

sim::Time ReplaySemiSyncAdversary::delivery_delay(
    const sim::SemiSyncMessage& msg) {
  (void)msg;
  if (next_delay_ < schedule_.delays.size()) {
    return schedule_.delays[next_delay_++];
  }
  return 1;
}

std::optional<sim::Time> ReplaySemiSyncAdversary::crash_time(
    sim::ProcessId pid) {
  if (pid >= 0 &&
      static_cast<std::size_t>(pid) < schedule_.crash_times.size()) {
    return schedule_.crash_times[static_cast<std::size_t>(pid)];
  }
  return std::nullopt;
}

// ---- serialization ----

namespace {

void encode_pid_set(store::ByteWriter& out,
                    const std::set<sim::ProcessId>& pids) {
  out.u64(pids.size());
  for (const sim::ProcessId pid : pids) out.i64(pid);
}

std::set<sim::ProcessId> decode_pid_set(store::ByteReader& in) {
  const std::uint64_t count = in.u64();
  std::set<sim::ProcessId> pids;
  for (std::uint64_t i = 0; i < count; ++i) {
    pids.insert(static_cast<sim::ProcessId>(in.i64()));
  }
  return pids;
}

}  // namespace

void encode_schedule(store::ByteWriter& out, const Schedule& schedule) {
  out.u8(static_cast<std::uint8_t>(schedule.model));
  out.u64(schedule.meta.size());
  for (const auto& [key, value] : schedule.meta) {
    out.str(key);
    out.i64(value);
  }
  out.u64(schedule.inputs.size());
  for (const std::int64_t input : schedule.inputs) out.i64(input);

  out.u64(schedule.sync_rounds.size());
  for (const sim::SyncRoundPlan& plan : schedule.sync_rounds) {
    out.u64(plan.crash.size());
    for (const sim::ProcessId pid : plan.crash) out.i64(pid);
    out.u64(plan.delivered_to.size());
    for (const auto& [crasher, receivers] : plan.delivered_to) {
      out.i64(crasher);
      encode_pid_set(out, receivers);
    }
  }

  out.u64(schedule.async_rounds.size());
  for (const sim::AsyncRoundPlan& plan : schedule.async_rounds) {
    out.u64(plan.heard.size());
    for (const auto& [pid, heard] : plan.heard) {
      out.i64(pid);
      encode_pid_set(out, heard);
    }
  }

  out.u64(schedule.crash_times.size());
  for (const std::optional<sim::Time>& crash : schedule.crash_times) {
    out.u8(crash.has_value() ? 1 : 0);
    out.i64(crash.value_or(0));
  }
  out.u64(schedule.spacings.size());
  for (const auto& [pid, spacing] : schedule.spacings) {
    out.i64(pid);
    out.i64(spacing);
  }
  out.u64(schedule.delays.size());
  for (const sim::Time delay : schedule.delays) out.i64(delay);
}

Schedule decode_schedule(store::ByteReader& in) {
  Schedule schedule;
  const std::uint8_t model = in.u8();
  if (model > static_cast<std::uint8_t>(Model::kSemiSync)) {
    throw store::SerializationError("schedule: unknown model tag " +
                                    std::to_string(model));
  }
  schedule.model = static_cast<Model>(model);
  const std::uint64_t meta_count = in.u64();
  for (std::uint64_t i = 0; i < meta_count; ++i) {
    const std::string key = in.str();
    schedule.meta[key] = in.i64();
  }
  const std::uint64_t input_count = in.u64();
  for (std::uint64_t i = 0; i < input_count; ++i) {
    schedule.inputs.push_back(in.i64());
  }

  const std::uint64_t sync_count = in.u64();
  for (std::uint64_t r = 0; r < sync_count; ++r) {
    sim::SyncRoundPlan plan;
    const std::uint64_t crash_count = in.u64();
    for (std::uint64_t i = 0; i < crash_count; ++i) {
      plan.crash.push_back(static_cast<sim::ProcessId>(in.i64()));
    }
    const std::uint64_t delivered_count = in.u64();
    for (std::uint64_t i = 0; i < delivered_count; ++i) {
      const sim::ProcessId crasher = static_cast<sim::ProcessId>(in.i64());
      plan.delivered_to[crasher] = decode_pid_set(in);
    }
    schedule.sync_rounds.push_back(std::move(plan));
  }

  const std::uint64_t async_count = in.u64();
  for (std::uint64_t r = 0; r < async_count; ++r) {
    sim::AsyncRoundPlan plan;
    const std::uint64_t heard_count = in.u64();
    for (std::uint64_t i = 0; i < heard_count; ++i) {
      const sim::ProcessId pid = static_cast<sim::ProcessId>(in.i64());
      plan.heard[pid] = decode_pid_set(in);
    }
    schedule.async_rounds.push_back(std::move(plan));
  }

  const std::uint64_t crash_count = in.u64();
  for (std::uint64_t i = 0; i < crash_count; ++i) {
    const bool has = in.u8() != 0;
    const std::int64_t when = in.i64();
    schedule.crash_times.push_back(
        has ? std::optional<sim::Time>(when) : std::nullopt);
  }
  const std::uint64_t spacing_count = in.u64();
  for (std::uint64_t i = 0; i < spacing_count; ++i) {
    const sim::ProcessId pid = static_cast<sim::ProcessId>(in.i64());
    schedule.spacings.emplace_back(pid, in.i64());
  }
  const std::uint64_t delay_count = in.u64();
  for (std::uint64_t i = 0; i < delay_count; ++i) {
    schedule.delays.push_back(in.i64());
  }
  return schedule;
}

std::vector<std::uint8_t> serialize_schedule(const Schedule& schedule) {
  store::ByteWriter payload;
  encode_schedule(payload, schedule);
  return store::seal(store::PayloadKind::kSchedule, payload.bytes());
}

Schedule deserialize_schedule(const std::vector<std::uint8_t>& bytes) {
  const std::vector<std::uint8_t> payload =
      store::unseal(bytes, store::PayloadKind::kSchedule);
  store::ByteReader in(payload);
  Schedule schedule = decode_schedule(in);
  in.expect_done("schedule");
  return schedule;
}

void save_schedule(const std::string& path, const Schedule& schedule) {
  const std::vector<std::uint8_t> bytes = serialize_schedule(schedule);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open schedule file for write: " + path);
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out.good()) {
    throw std::runtime_error("short write to schedule file: " + path);
  }
}

Schedule load_schedule(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open schedule file: " + path);
  const std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return deserialize_schedule(bytes);
}

}  // namespace psph::check
