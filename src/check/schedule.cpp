#include "check/schedule.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace psph::check {

const char* model_name(Model model) {
  switch (model) {
    case Model::kSync: return "sync";
    case Model::kAsync: return "async";
    case Model::kSemiSync: return "semisync";
    case Model::kQuorum: return "quorum";
  }
  return "?";
}

std::int64_t Schedule::meta_or(const std::string& key,
                               std::int64_t fallback) const {
  const auto it = meta.find(key);
  return it == meta.end() ? fallback : it->second;
}

std::size_t Schedule::choice_count() const {
  std::size_t count = 0;
  switch (model) {
    case Model::kSync: {
      // Alive set starts at {0..n-1} and shrinks by each round's crashes;
      // interference = crashes + messages withheld from survivors.
      const int n = static_cast<int>(meta_or("n", 0));
      std::set<sim::ProcessId> alive;
      for (int p = 0; p < n; ++p) alive.insert(p);
      for (const sim::SyncRoundPlan& plan : sync_rounds) {
        count += plan.crash.size();
        const std::size_t survivors = alive.size() - plan.crash.size();
        for (const sim::ProcessId crasher : plan.crash) {
          const auto it = plan.delivered_to.find(crasher);
          const std::size_t delivered =
              it == plan.delivered_to.end() ? 0 : it->second.size();
          count += survivors - std::min(survivors, delivered);
        }
        for (const sim::ProcessId crasher : plan.crash) alive.erase(crasher);
      }
      break;
    }
    case Model::kAsync: {
      // Interference = messages scheduled "late" (left out of heard-sets).
      for (const sim::AsyncRoundPlan& plan : async_rounds) {
        const std::size_t participants = plan.heard.size();
        for (const auto& [pid, heard] : plan.heard) {
          (void)pid;
          count += participants - std::min(participants, heard.size());
        }
      }
      break;
    }
    case Model::kSemiSync: {
      const sim::Time c1 = meta_or("c1", 1);
      for (const auto& crash : crash_times) {
        if (crash.has_value()) ++count;
      }
      for (const auto& [pid, spacing] : spacings) {
        (void)pid;
        if (spacing > c1) count += static_cast<std::size_t>(spacing - c1);
      }
      for (const sim::Time delay : delays) {
        if (delay > 1) count += static_cast<std::size_t>(delay - 1);
      }
      break;
    }
    case Model::kQuorum: {
      // Interference = corruptions + every explicit plan entry + false
      // suspicions (suspecting a process that neither crashed in this
      // schedule nor is corrupt; truthful suspicions are the oracle doing
      // its job, not the adversary interfering).
      count += corrupt.size();
      std::set<sim::ProcessId> failed(corrupt.begin(), corrupt.end());
      for (const sim::ByzRoundPlan& plan : quorum_rounds) {
        count += plan.defer.size() + plan.drop.size() + plan.inject.size() +
                 plan.crash.size();
        failed.insert(plan.crash.begin(), plan.crash.end());
      }
      for (const FdSample& sample : fd_samples) {
        for (const sim::ProcessId pid : sample.suspected) {
          if (failed.find(pid) == failed.end()) ++count;
        }
      }
      break;
    }
  }
  return count;
}

std::string Schedule::summary() const {
  std::ostringstream out;
  out << model_name(model) << " n=" << meta_or("n", 0);
  switch (model) {
    case Model::kSync: {
      std::size_t crashes = 0;
      for (const auto& plan : sync_rounds) crashes += plan.crash.size();
      out << " rounds=" << sync_rounds.size() << " crashes=" << crashes;
      break;
    }
    case Model::kAsync:
      out << " rounds=" << async_rounds.size();
      break;
    case Model::kSemiSync: {
      std::size_t crashes = 0;
      for (const auto& crash : crash_times) {
        if (crash.has_value()) ++crashes;
      }
      out << " steps=" << spacings.size() << " messages=" << delays.size()
          << " crashes=" << crashes;
      break;
    }
    case Model::kQuorum: {
      std::size_t crashes = 0;
      std::size_t injects = 0;
      for (const auto& plan : quorum_rounds) {
        crashes += plan.crash.size();
        injects += plan.inject.size();
      }
      out << " rounds=" << quorum_rounds.size()
          << " corrupt=" << corrupt.size() << " crashes=" << crashes
          << " injects=" << injects << " fd=" << fd_samples.size();
      break;
    }
  }
  out << " choices=" << choice_count();
  return out.str();
}

// ---- recording ----

sim::SyncRoundPlan RecordingSyncAdversary::plan_round(
    int round, const std::vector<sim::ProcessId>& alive) {
  sim::SyncRoundPlan plan = inner_.plan_round(round, alive);
  out_.sync_rounds.push_back(plan);
  return plan;
}

sim::AsyncRoundPlan RecordingAsyncAdversary::plan_round(
    int round, const std::vector<sim::ProcessId>& participants,
    int min_heard) {
  sim::AsyncRoundPlan plan = inner_.plan_round(round, participants, min_heard);
  out_.async_rounds.push_back(plan);
  return plan;
}

sim::Time RecordingSemiSyncAdversary::step_spacing(sim::ProcessId pid,
                                                   sim::Time now) {
  const sim::Time spacing = inner_.step_spacing(pid, now);
  out_.spacings.emplace_back(pid, spacing);
  return spacing;
}

sim::Time RecordingSemiSyncAdversary::delivery_delay(
    const sim::SemiSyncMessage& msg) {
  const sim::Time delay = inner_.delivery_delay(msg);
  out_.delays.push_back(delay);
  return delay;
}

std::optional<sim::Time> RecordingSemiSyncAdversary::crash_time(
    sim::ProcessId pid) {
  const std::optional<sim::Time> crash = inner_.crash_time(pid);
  if (pid >= 0) {
    if (out_.crash_times.size() <= static_cast<std::size_t>(pid)) {
      out_.crash_times.resize(static_cast<std::size_t>(pid) + 1);
    }
    out_.crash_times[static_cast<std::size_t>(pid)] = crash;
  }
  return crash;
}

std::vector<sim::ProcessId> RecordingByzantineAdversary::corrupt(
    int num_processes, int max_byzantine) {
  out_.corrupt = inner_.corrupt(num_processes, max_byzantine);
  return out_.corrupt;
}

sim::ByzRoundPlan RecordingByzantineAdversary::plan_round(
    int round, const std::vector<sim::PendingMessage>& in_flight,
    const std::vector<sim::ProcessId>& alive, int crash_budget) {
  sim::ByzRoundPlan plan =
      inner_.plan_round(round, in_flight, alive, crash_budget);
  out_.quorum_rounds.push_back(plan);
  return plan;
}

RecordingFailureDetector::RecordingFailureDetector(sim::FailureDetector& inner,
                                                   Schedule& out)
    : inner_(inner), out_(out) {
  out_.meta["fd_settle"] = inner_.settle_rounds();
}

std::vector<sim::ProcessId> RecordingFailureDetector::suspects(
    sim::ProcessId observer, int round,
    const std::vector<sim::ProcessId>& crashed) {
  FdSample sample;
  sample.observer = observer;
  sample.round = round;
  sample.suspected = inner_.suspects(observer, round, crashed);
  out_.fd_samples.push_back(sample);
  return sample.suspected;
}

// ---- replay ----

sim::SyncRoundPlan ReplaySyncAdversary::plan_round(
    int round, const std::vector<sim::ProcessId>& alive) {
  (void)alive;
  const std::size_t index = static_cast<std::size_t>(round - 1);
  if (index >= schedule_.sync_rounds.size()) return {};
  return schedule_.sync_rounds[index];
}

sim::AsyncRoundPlan ReplayAsyncAdversary::plan_round(
    int round, const std::vector<sim::ProcessId>& participants,
    int min_heard) {
  (void)min_heard;
  const std::size_t index = static_cast<std::size_t>(round - 1);
  if (index < schedule_.async_rounds.size()) {
    return schedule_.async_rounds[index];
  }
  // Past the recording: everyone hears everyone (least adversarial).
  sim::AsyncRoundPlan plan;
  const std::set<sim::ProcessId> all(participants.begin(), participants.end());
  for (const sim::ProcessId pid : participants) plan.heard[pid] = all;
  return plan;
}

ReplaySemiSyncAdversary::ReplaySemiSyncAdversary(const Schedule& schedule)
    : schedule_(schedule), min_spacing_(schedule.meta_or("c1", 1)) {}

sim::Time ReplaySemiSyncAdversary::step_spacing(sim::ProcessId pid,
                                                sim::Time now) {
  (void)pid;
  (void)now;
  if (next_spacing_ < schedule_.spacings.size()) {
    return schedule_.spacings[next_spacing_++].second;
  }
  return min_spacing_;
}

sim::Time ReplaySemiSyncAdversary::delivery_delay(
    const sim::SemiSyncMessage& msg) {
  (void)msg;
  if (next_delay_ < schedule_.delays.size()) {
    return schedule_.delays[next_delay_++];
  }
  return 1;
}

std::optional<sim::Time> ReplaySemiSyncAdversary::crash_time(
    sim::ProcessId pid) {
  if (pid >= 0 &&
      static_cast<std::size_t>(pid) < schedule_.crash_times.size()) {
    return schedule_.crash_times[static_cast<std::size_t>(pid)];
  }
  return std::nullopt;
}

std::vector<sim::ProcessId> ReplayByzantineAdversary::corrupt(
    int num_processes, int max_byzantine) {
  num_processes_ = num_processes;
  corrupt_.clear();
  for (const sim::ProcessId pid : schedule_.corrupt) {
    if (pid < 0 || pid >= num_processes) continue;
    if (static_cast<int>(corrupt_.size()) >= max_byzantine) break;
    if (!corrupt_.empty() && pid <= corrupt_.back()) continue;
    corrupt_.push_back(pid);
  }
  return corrupt_;
}

sim::ByzRoundPlan ReplayByzantineAdversary::plan_round(
    int round, const std::vector<sim::PendingMessage>& in_flight,
    const std::vector<sim::ProcessId>& alive, int crash_budget) {
  const std::size_t index = static_cast<std::size_t>(round - 1);
  if (index >= schedule_.quorum_rounds.size()) return {};
  const sim::ByzRoundPlan& recorded = schedule_.quorum_rounds[index];

  // Sanitize against the current executor state (see class comment): an
  // unedited recording passes through verbatim, a shrunk one degrades to
  // fewer adversary choices instead of tripping executor validation.
  sim::ByzRoundPlan plan;
  const auto is_corrupt = [&](sim::ProcessId pid) {
    return std::binary_search(corrupt_.begin(), corrupt_.end(), pid);
  };
  std::set<sim::ProcessId> crashing;
  for (const sim::ProcessId pid : recorded.crash) {
    if (static_cast<int>(plan.crash.size()) >= crash_budget) break;
    if (std::find(alive.begin(), alive.end(), pid) == alive.end()) continue;
    if (!crashing.insert(pid).second) continue;
    plan.crash.push_back(pid);
  }
  const auto sender_crashed = [&](sim::ProcessId pid) {
    if (is_corrupt(pid)) return false;
    if (crashing.count(pid) != 0) return true;
    return std::find(alive.begin(), alive.end(), pid) == alive.end();
  };
  std::set<std::uint32_t> in_flight_ids;
  std::map<std::uint32_t, sim::ProcessId> sender_of;
  for (const sim::PendingMessage& pm : in_flight) {
    in_flight_ids.insert(pm.id);
    sender_of[pm.id] = pm.msg.from;
  }
  for (const std::uint32_t id : recorded.drop) {
    if (in_flight_ids.count(id) == 0) continue;
    if (!sender_crashed(sender_of[id])) continue;
    plan.drop.push_back(id);
  }
  for (const std::uint32_t id : recorded.defer) {
    if (in_flight_ids.count(id) == 0) continue;
    plan.defer.push_back(id);
  }
  for (const sim::ByzInject& inject : recorded.inject) {
    if (!is_corrupt(inject.byz)) continue;
    if (inject.to < 0 || inject.to >= num_processes_) continue;
    plan.inject.push_back(inject);
  }
  return plan;
}

ReplayFailureDetector::ReplayFailureDetector(const Schedule& schedule)
    : settle_rounds_(static_cast<int>(schedule.meta_or("fd_settle", 1))) {
  for (const FdSample& sample : schedule.fd_samples) {
    by_query_.emplace(std::make_pair(sample.observer, sample.round), &sample);
  }
}

std::vector<sim::ProcessId> ReplayFailureDetector::suspects(
    sim::ProcessId observer, int round,
    const std::vector<sim::ProcessId>& crashed) {
  const auto it = by_query_.find(std::make_pair(observer, round));
  if (it == by_query_.end()) return crashed;
  return it->second->suspected;
}

// ---- serialization ----

namespace {

/// v2 payloads start with this marker; v1 payloads start with a model tag,
/// which is always <= 2 (the quorum model never existed in v1).
constexpr std::uint8_t kSchedulePayloadV2 = 0xF2;

void encode_pid_set(store::ByteWriter& out,
                    const std::set<sim::ProcessId>& pids) {
  out.u64(pids.size());
  for (const sim::ProcessId pid : pids) out.i64(pid);
}

std::set<sim::ProcessId> decode_pid_set(store::ByteReader& in) {
  const std::uint64_t count = in.u64();
  std::set<sim::ProcessId> pids;
  for (std::uint64_t i = 0; i < count; ++i) {
    pids.insert(static_cast<sim::ProcessId>(in.i64()));
  }
  return pids;
}

}  // namespace

void encode_schedule(store::ByteWriter& out, const Schedule& schedule) {
  out.u8(kSchedulePayloadV2);
  out.u8(static_cast<std::uint8_t>(schedule.model));
  out.u64(schedule.meta.size());
  for (const auto& [key, value] : schedule.meta) {
    out.str(key);
    out.i64(value);
  }
  out.u64(schedule.inputs.size());
  for (const std::int64_t input : schedule.inputs) out.i64(input);

  out.u64(schedule.sync_rounds.size());
  for (const sim::SyncRoundPlan& plan : schedule.sync_rounds) {
    out.u64(plan.crash.size());
    for (const sim::ProcessId pid : plan.crash) out.i64(pid);
    out.u64(plan.delivered_to.size());
    for (const auto& [crasher, receivers] : plan.delivered_to) {
      out.i64(crasher);
      encode_pid_set(out, receivers);
    }
  }

  out.u64(schedule.async_rounds.size());
  for (const sim::AsyncRoundPlan& plan : schedule.async_rounds) {
    out.u64(plan.heard.size());
    for (const auto& [pid, heard] : plan.heard) {
      out.i64(pid);
      encode_pid_set(out, heard);
    }
  }

  out.u64(schedule.crash_times.size());
  for (const std::optional<sim::Time>& crash : schedule.crash_times) {
    out.u8(crash.has_value() ? 1 : 0);
    out.i64(crash.value_or(0));
  }
  out.u64(schedule.spacings.size());
  for (const auto& [pid, spacing] : schedule.spacings) {
    out.i64(pid);
    out.i64(spacing);
  }
  out.u64(schedule.delays.size());
  for (const sim::Time delay : schedule.delays) out.i64(delay);

  out.u64(schedule.corrupt.size());
  for (const sim::ProcessId pid : schedule.corrupt) out.i64(pid);
  out.u64(schedule.quorum_rounds.size());
  for (const sim::ByzRoundPlan& plan : schedule.quorum_rounds) {
    out.u64(plan.defer.size());
    for (const std::uint32_t id : plan.defer) out.u64(id);
    out.u64(plan.drop.size());
    for (const std::uint32_t id : plan.drop) out.u64(id);
    out.u64(plan.inject.size());
    for (const sim::ByzInject& inject : plan.inject) {
      out.i64(inject.byz);
      out.i64(inject.claimed_from);
      out.i64(inject.to);
      out.u8(inject.type);
      out.i64(inject.value);
    }
    out.u64(plan.crash.size());
    for (const sim::ProcessId pid : plan.crash) out.i64(pid);
  }
  out.u64(schedule.fd_samples.size());
  for (const FdSample& sample : schedule.fd_samples) {
    out.i64(sample.observer);
    out.i64(sample.round);
    out.u64(sample.suspected.size());
    for (const sim::ProcessId pid : sample.suspected) out.i64(pid);
  }
}

Schedule decode_schedule(store::ByteReader& in) {
  Schedule schedule;
  const std::uint8_t first = in.u8();
  const bool v2 = first == kSchedulePayloadV2;
  const std::uint8_t model = v2 ? in.u8() : first;
  const std::uint8_t max_model =
      v2 ? static_cast<std::uint8_t>(Model::kQuorum)
         : static_cast<std::uint8_t>(Model::kSemiSync);
  if (model > max_model) {
    throw store::SerializationError("schedule: unknown model tag " +
                                    std::to_string(model));
  }
  schedule.model = static_cast<Model>(model);
  const std::uint64_t meta_count = in.u64();
  for (std::uint64_t i = 0; i < meta_count; ++i) {
    const std::string key = in.str();
    schedule.meta[key] = in.i64();
  }
  const std::uint64_t input_count = in.u64();
  for (std::uint64_t i = 0; i < input_count; ++i) {
    schedule.inputs.push_back(in.i64());
  }

  const std::uint64_t sync_count = in.u64();
  for (std::uint64_t r = 0; r < sync_count; ++r) {
    sim::SyncRoundPlan plan;
    const std::uint64_t crash_count = in.u64();
    for (std::uint64_t i = 0; i < crash_count; ++i) {
      plan.crash.push_back(static_cast<sim::ProcessId>(in.i64()));
    }
    const std::uint64_t delivered_count = in.u64();
    for (std::uint64_t i = 0; i < delivered_count; ++i) {
      const sim::ProcessId crasher = static_cast<sim::ProcessId>(in.i64());
      plan.delivered_to[crasher] = decode_pid_set(in);
    }
    schedule.sync_rounds.push_back(std::move(plan));
  }

  const std::uint64_t async_count = in.u64();
  for (std::uint64_t r = 0; r < async_count; ++r) {
    sim::AsyncRoundPlan plan;
    const std::uint64_t heard_count = in.u64();
    for (std::uint64_t i = 0; i < heard_count; ++i) {
      const sim::ProcessId pid = static_cast<sim::ProcessId>(in.i64());
      plan.heard[pid] = decode_pid_set(in);
    }
    schedule.async_rounds.push_back(std::move(plan));
  }

  const std::uint64_t crash_count = in.u64();
  for (std::uint64_t i = 0; i < crash_count; ++i) {
    const bool has = in.u8() != 0;
    const std::int64_t when = in.i64();
    schedule.crash_times.push_back(
        has ? std::optional<sim::Time>(when) : std::nullopt);
  }
  const std::uint64_t spacing_count = in.u64();
  for (std::uint64_t i = 0; i < spacing_count; ++i) {
    const sim::ProcessId pid = static_cast<sim::ProcessId>(in.i64());
    schedule.spacings.emplace_back(pid, in.i64());
  }
  const std::uint64_t delay_count = in.u64();
  for (std::uint64_t i = 0; i < delay_count; ++i) {
    schedule.delays.push_back(in.i64());
  }

  if (v2) {
    const std::uint64_t corrupt_count = in.u64();
    for (std::uint64_t i = 0; i < corrupt_count; ++i) {
      schedule.corrupt.push_back(static_cast<sim::ProcessId>(in.i64()));
    }
    const std::uint64_t round_count = in.u64();
    for (std::uint64_t r = 0; r < round_count; ++r) {
      sim::ByzRoundPlan plan;
      const std::uint64_t defer_count = in.u64();
      for (std::uint64_t i = 0; i < defer_count; ++i) {
        plan.defer.push_back(static_cast<std::uint32_t>(in.u64()));
      }
      const std::uint64_t drop_count = in.u64();
      for (std::uint64_t i = 0; i < drop_count; ++i) {
        plan.drop.push_back(static_cast<std::uint32_t>(in.u64()));
      }
      const std::uint64_t inject_count = in.u64();
      for (std::uint64_t i = 0; i < inject_count; ++i) {
        sim::ByzInject inject;
        inject.byz = static_cast<sim::ProcessId>(in.i64());
        inject.claimed_from = static_cast<sim::ProcessId>(in.i64());
        inject.to = static_cast<sim::ProcessId>(in.i64());
        inject.type = in.u8();
        inject.value = in.i64();
        plan.inject.push_back(inject);
      }
      const std::uint64_t plan_crash_count = in.u64();
      for (std::uint64_t i = 0; i < plan_crash_count; ++i) {
        plan.crash.push_back(static_cast<sim::ProcessId>(in.i64()));
      }
      schedule.quorum_rounds.push_back(std::move(plan));
    }
    const std::uint64_t sample_count = in.u64();
    for (std::uint64_t s = 0; s < sample_count; ++s) {
      FdSample sample;
      sample.observer = static_cast<sim::ProcessId>(in.i64());
      sample.round = static_cast<int>(in.i64());
      const std::uint64_t suspect_count = in.u64();
      for (std::uint64_t i = 0; i < suspect_count; ++i) {
        sample.suspected.push_back(static_cast<sim::ProcessId>(in.i64()));
      }
      schedule.fd_samples.push_back(std::move(sample));
    }
  }
  return schedule;
}

std::vector<std::uint8_t> serialize_schedule(const Schedule& schedule) {
  store::ByteWriter payload;
  encode_schedule(payload, schedule);
  return store::seal(store::PayloadKind::kSchedule, payload.bytes());
}

Schedule deserialize_schedule(const std::vector<std::uint8_t>& bytes) {
  const std::vector<std::uint8_t> payload =
      store::unseal(bytes, store::PayloadKind::kSchedule);
  store::ByteReader in(payload);
  Schedule schedule = decode_schedule(in);
  in.expect_done("schedule");
  return schedule;
}

void save_schedule(const std::string& path, const Schedule& schedule) {
  const std::vector<std::uint8_t> bytes = serialize_schedule(schedule);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open schedule file for write: " + path);
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out.good()) {
    throw std::runtime_error("short write to schedule file: " + path);
  }
}

Schedule load_schedule(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open schedule file: " + path);
  const std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return deserialize_schedule(bytes);
}

}  // namespace psph::check
