// Impossibility explorer: pick a timing model and parameters; the tool
// builds the r-round protocol complex over the full input complex, measures
// its connectivity, runs the exhaustive decision-map search, and reports
// whether k-set agreement is solvable on that instance.
//
//   ./impossibility_explorer --model async --n 3 --f 1 --k 1 --r 1
//   ./impossibility_explorer --model sync  --n 3 --f 1 --k 1 --r 2
//   ./impossibility_explorer --model semisync --n 3 --f 1 --k 1 --mu 2

#include <cstdio>
#include <string>

#include "core/theorems.h"
#include "util/cli.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace psph;

  std::string model = "async";
  int n = 3, f = 1, k = 1, r = 1, mu = 2;
  std::int64_t node_limit = 200'000'000;
  util::Cli cli("impossibility_explorer",
                "decide k-set agreement on an explicit protocol complex");
  cli.flag("model", &model, "async | sync | semisync");
  cli.flag("n", &n, "number of processes");
  cli.flag("f", &f, "failure budget");
  cli.flag("k", &k, "agreement degree (k-set agreement)");
  cli.flag("r", &r, "rounds");
  cli.flag("mu", &mu, "microrounds per round (semisync only)");
  cli.flag("node-limit", &node_limit, "search node limit (0 = unlimited)");
  cli.parse(argc, argv);

  util::Timer timer;
  core::SearchOptions options;
  options.node_limit = static_cast<std::uint64_t>(node_limit);

  core::AgreementCheck check;
  core::ConnectivityCheck connectivity;
  if (model == "async") {
    check = core::check_async_agreement(n, f, k, r, options);
    connectivity = core::check_async_connectivity(n, n, f, r);
  } else if (model == "sync") {
    check = core::check_sync_agreement(n, f, k, r, options);
    connectivity = core::check_sync_connectivity(n, n, k, r);
  } else if (model == "semisync") {
    check = core::check_semisync_agreement(n, f, k, mu, r, options);
    connectivity = core::check_semisync_connectivity(n, n, k, mu, r);
  } else {
    std::fprintf(stderr, "unknown model '%s'\n", model.c_str());
    return 2;
  }

  std::printf("model=%s n=%d f=%d k=%d r=%d%s\n", model.c_str(), n, f, k, r,
              model == "semisync" ? (" mu=" + std::to_string(mu)).c_str()
                                  : "");
  std::printf("protocol complex: %zu facets, %zu vertices\n",
              check.protocol_facets, check.protocol_vertices);
  std::printf("homological connectivity (rainbow input): %d\n",
              connectivity.measured);
  std::printf("search: %llu nodes, %s\n",
              static_cast<unsigned long long>(check.nodes),
              check.search_exhausted ? "exhausted" : "node limit hit");
  if (check.impossible) {
    std::printf("verdict: IMPOSSIBLE — no decision map exists for %d-set "
                "agreement on this complex (exhaustively proven)\n",
                k);
  } else if (check.possible) {
    std::printf("verdict: SOLVABLE — a decision map exists\n");
  } else {
    std::printf("verdict: inconclusive (raise --node-limit)\n");
  }
  std::printf("elapsed: %s\n", timer.pretty().c_str());
  return 0;
}
