// Visualize: write the paper's figures as Graphviz DOT / OFF / facet
// listings. Vertices are labeled with their full-information views, so the
// rendered picture is literally the paper's Figure 1 / Figure 3 labeling.
//
//   ./visualize --figure 1 --format dot > fig1.dot && dot -Tsvg fig1.dot
//   ./visualize --figure 3 --format dot
//   ./visualize --figure iis --format listing

#include <cstdio>
#include <string>

#include "core/iis_complex.h"
#include "core/pseudosphere.h"
#include "core/sync_complex.h"
#include "core/theorems.h"
#include "topology/export.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace psph;

  std::string figure = "1";
  std::string format = "dot";
  int n = 3;
  util::Cli cli("visualize", "export paper figures as DOT / OFF / listings");
  cli.flag("figure", &figure, "1 | 2 | 3 | iis");
  cli.flag("format", &format, "dot | off | listing");
  cli.flag("n", &n, "number of processes");
  cli.parse(argc, argv);

  core::ViewRegistry views;
  topology::VertexArena arena;
  topology::SimplicialComplex complex;
  bool labeled_with_views = false;

  if (figure == "1") {
    std::vector<core::ProcessId> pids;
    for (int i = 0; i < n; ++i) pids.push_back(i);
    complex = core::pseudosphere_uniform(pids, {0, 1}, arena);
  } else if (figure == "2") {
    complex = core::pseudosphere_uniform({0, 1}, {0, 1, 2}, arena);
  } else if (figure == "3") {
    const topology::Simplex input = core::rainbow_input(n, views, arena);
    complex = core::sync_round_complex(input, {n, 1, 1, 1}, views, arena);
    labeled_with_views = true;
  } else if (figure == "iis") {
    const topology::Simplex input = core::rainbow_input(n, views, arena);
    complex = core::iis_round_complex(input, views, arena);
    labeled_with_views = true;
  } else {
    std::fprintf(stderr, "unknown figure '%s'\n", figure.c_str());
    return 2;
  }

  std::string output;
  if (format == "dot") {
    if (labeled_with_views) {
      output = topology::to_dot(complex, [&](topology::VertexId v) {
        return views.to_string(arena.state(v));
      });
    } else {
      output = topology::to_dot(complex, [&](topology::VertexId v) {
        return "P" + std::to_string(arena.pid(v)) + "=" +
               std::to_string(arena.state(v));
      });
    }
  } else if (format == "off") {
    output = topology::to_off(complex);
  } else if (format == "listing") {
    output = topology::to_facet_listing(complex);
  } else {
    std::fprintf(stderr, "unknown format '%s'\n", format.c_str());
    return 2;
  }
  std::fputs(output.c_str(), stdout);
  std::fprintf(stderr, "# %zu facets, %zu vertices, dim %d\n",
               complex.facet_count(), complex.vertex_ids().size(),
               complex.dimension());
  return 0;
}
