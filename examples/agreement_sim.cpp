// Agreement simulator: run the matching-upper-bound protocols under random
// adversaries and report decision statistics — rounds used, decision times,
// distinct decisions — next to the paper's bounds.
//
//   ./agreement_sim --model sync     --n 5 --f 2 --k 1 --executions 500
//   ./agreement_sim --model async    --n 4 --f 2 --executions 500
//   ./agreement_sim --model semisync --n 4 --f 2 --k 2 --c2 3 --d 10

#include <cstdio>
#include <string>

#include "check/soak.h"
#include "protocols/async_kset.h"
#include "protocols/floodset.h"
#include "protocols/semisync_kset.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace psph;

  std::string model = "sync";
  int n = 4, f = 1, k = 1, executions = 200;
  std::int64_t seed = 1, c1 = 1, c2 = 2, d = 5;
  util::Cli cli("agreement_sim",
                "soak the k-set agreement protocols under random adversaries");
  cli.flag("model", &model, "sync | async | semisync");
  cli.flag("n", &n, "number of processes");
  cli.flag("f", &f, "failure budget");
  cli.flag("k", &k, "agreement degree");
  cli.flag("executions", &executions, "number of random executions");
  cli.flag("seed", &seed, "PRNG seed");
  cli.flag("c1", &c1, "min step spacing (semisync)");
  cli.flag("c2", &c2, "max step spacing (semisync)");
  cli.flag("d", &d, "max message delay (semisync)");
  std::string schedule_out, schedule_in;
  cli.flag("schedule-out", &schedule_out,
           "record one run's adversary schedule to this file");
  cli.flag("schedule-in", &schedule_in,
           "replay a recorded schedule under the invariant monitors and exit");
  cli.parse(argc, argv);

  if (!schedule_in.empty()) {
    const check::RunOutcome outcome =
        check::replay_schedule(check::load_schedule(schedule_in));
    std::printf("replayed %s\n", outcome.schedule.summary().c_str());
    for (const check::Violation& violation : outcome.violations) {
      std::printf("VIOLATION %s: %s\n", violation.monitor.c_str(),
                  violation.detail.c_str());
    }
    std::printf("%s\n", outcome.ok() ? "all invariants hold"
                                     : "invariant violations found");
    return outcome.ok() ? 0 : 1;
  }
  if (!schedule_out.empty()) {
    check::RunSpec spec;
    spec.protocol = model == "async"      ? check::ProtocolKind::kAsyncKSet
                    : model == "semisync" ? check::ProtocolKind::kSemiSyncKSet
                                          : check::ProtocolKind::kFloodSet;
    spec.n = n;
    spec.f = f;
    spec.k = k;
    spec.seed = static_cast<std::uint64_t>(seed);
    spec.c1 = c1;
    spec.c2 = c2;
    spec.d = d;
    check::save_schedule(schedule_out, check::run_recorded(spec).schedule);
    std::printf("recorded one %s run's schedule -> %s\n", model.c_str(),
                schedule_out.c_str());
  }

  if (model == "sync") {
    const protocols::FloodSetConfig config{n, f, k};
    std::printf("FloodSet: n=%d f=%d k=%d -> %d rounds (= floor(f/k)+1)\n", n,
                f, k, protocols::floodset_rounds(config));
    const protocols::AgreementAudit audit = protocols::soak_floodset(
        config, static_cast<std::uint64_t>(seed), executions);
    std::printf("%d executions: %s\n", executions,
                audit.ok() ? "all satisfied k-set agreement"
                           : audit.failure.c_str());
    return audit.ok() ? 0 : 1;
  }
  if (model == "async") {
    const protocols::AsyncKSetConfig config{n, f, 1};
    std::printf("Async wait-for-(n-f): n=%d f=%d achieves k=%d (= f+1)\n", n,
                f, f + 1);
    const protocols::AsyncAudit audit = protocols::soak_async_kset(
        config, static_cast<std::uint64_t>(seed), executions);
    std::printf("%d executions: %s\n", executions,
                audit.ok() ? "all satisfied (f+1)-set agreement"
                           : audit.failure.c_str());
    return audit.ok() ? 0 : 1;
  }
  if (model == "semisync") {
    protocols::SemiSyncKSetConfig config;
    config.timing = {.c1 = c1, .c2 = c2, .d = d, .num_processes = n};
    config.max_failures = f;
    config.k = k;
    const double c_ratio = static_cast<double>(c2) / static_cast<double>(c1);
    std::printf(
        "Semi-sync FloodMin-over-timeouts: n=%d f=%d k=%d C=%.2f d=%lld\n", n,
        f, k, c_ratio, static_cast<long long>(d));
    std::printf("Cor 22 lower bound: floor(f/k) d + C d = %.1f ticks\n",
                (f / k) * static_cast<double>(d) +
                    c_ratio * static_cast<double>(d));
    const protocols::SemiSyncAudit audit = protocols::soak_semisync_kset(
        config, static_cast<std::uint64_t>(seed), executions);
    std::printf("%d executions: %s; slowest decision at t=%lld\n", executions,
                audit.ok() ? "all satisfied k-set agreement"
                           : audit.failure.c_str(),
                static_cast<long long>(audit.last_decision_time));
    return audit.ok() ? 0 : 1;
  }
  std::fprintf(stderr, "unknown model '%s'\n", model.c_str());
  return 2;
}
