// Sperner's lemma demo — the combinatorial engine behind Theorem 9.
// Subdivide Δ^dim barycentrically, color vertices by their carriers, count
// panchromatic simplexes (always odd), and show a histogram over random
// colorings.
//
//   ./sperner_demo --dim 2 --rounds 2 --trials 200

#include <cstdio>
#include <map>

#include "core/sperner.h"
#include "util/cli.h"
#include "util/random.h"

int main(int argc, char** argv) {
  using namespace psph;

  int dim = 2, rounds = 2, trials = 100;
  std::int64_t seed = 7;
  util::Cli cli("sperner_demo", "count panchromatic simplexes (always odd)");
  cli.flag("dim", &dim, "dimension of the simplex");
  cli.flag("rounds", &rounds, "barycentric subdivision rounds");
  cli.flag("trials", &trials, "random Sperner colorings to try");
  cli.flag("seed", &seed, "PRNG seed");
  cli.parse(argc, argv);

  core::SpernerInstance instance =
      core::make_subdivided_simplex(dim, rounds);
  std::printf("sd^%d(Delta^%d): %zu vertices, %zu facets\n", rounds, dim,
              instance.carriers.size(), instance.complex.facet_count());

  core::color_min_carrier(instance);
  std::printf("canonical min-carrier coloring: %zu panchromatic facets\n",
              core::count_panchromatic(instance));

  util::Rng rng(static_cast<std::uint64_t>(seed));
  std::map<std::size_t, int> histogram;
  bool all_odd = true;
  for (int t = 0; t < trials; ++t) {
    core::color_randomly(instance, rng);
    const std::size_t count = core::count_panchromatic(instance);
    ++histogram[count];
    if (count % 2 == 0) all_odd = false;
  }
  std::printf("random colorings (%d trials):\n", trials);
  for (const auto& [count, frequency] : histogram) {
    std::printf("  %4zu panchromatic: %d trials\n", count, frequency);
  }
  std::printf("Sperner's lemma (all counts odd): %s\n",
              all_odd ? "HOLDS" : "VIOLATED");
  return all_odd ? 0 : 1;
}
