// Quickstart: build a pseudosphere, inspect it, compute its homology, and
// construct a one-round protocol complex in each timing model.
//
//   ./quickstart            # defaults: 3 processes, binary values
//   ./quickstart --n 4      # more processes

#include <cstdio>

#include "core/async_complex.h"
#include "core/pseudosphere.h"
#include "core/semisync_complex.h"
#include "core/sync_complex.h"
#include "core/theorems.h"
#include "topology/homology.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace psph;

  int n = 3;
  util::Cli cli("quickstart", "pseudosphere library tour");
  cli.flag("n", &n, "number of processes (n+1 in the paper's notation)");
  cli.parse(argc, argv);

  // 1. The paper's namesake: ψ(Δ^{n-1}; {0,1}) is an (n-1)-sphere.
  topology::VertexArena arena;
  std::vector<core::ProcessId> pids;
  for (int i = 0; i < n; ++i) pids.push_back(i);
  const topology::SimplicialComplex psi =
      core::pseudosphere_uniform(pids, {0, 1}, arena);
  std::printf("psi(Delta^%d; {0,1}): %zu facets, %zu vertices, chi = %lld\n",
              n - 1, psi.facet_count(), psi.count_of_dim(0),
              psi.euler_characteristic());
  const topology::HomologyReport h =
      topology::reduced_homology(psi, {.max_dim = n - 1});
  std::printf("reduced homology: %s\n", h.to_string().c_str());

  // 2. One-round protocol complexes in the three models, from the input
  //    configuration where process i starts with value i.
  core::ViewRegistry views;
  topology::VertexArena model_arena;
  const topology::Simplex input = core::rainbow_input(n, views, model_arena);

  const topology::SimplicialComplex async_complex =
      core::async_round_complex(input, {n, 1, 1}, views, model_arena);
  std::printf("async  A^1(S): %zu facets (one pseudosphere, Lemma 11)\n",
              async_complex.facet_count());

  const topology::SimplicialComplex sync_complex =
      core::sync_round_complex(input, {n, 1, 1, 1}, views, model_arena);
  std::printf("sync   S^1(S): %zu facets (union of pseudospheres, Lemma 14)\n",
              sync_complex.facet_count());

  const topology::SimplicialComplex semisync_complex =
      core::semisync_round_complex(input, {n, 1, 1, 2, 1}, views,
                                   model_arena);
  std::printf(
      "semi   M^1(S): %zu facets (union over failure patterns, Lemma 19)\n",
      semisync_complex.facet_count());

  // 3. Their connectivity is what makes agreement hard (Theorem 9).
  std::printf("sync one-round homological connectivity: %d\n",
              topology::homological_connectivity(sync_complex, 1));
  return 0;
}
